package insights

import (
	"math"
	"testing"
	"time"

	"repro/internal/cluster"
)

func ares(t *testing.T) *cluster.Cluster {
	t.Helper()
	return cluster.BuildAres(time.Unix(1000, 0), 2, 2)
}

func TestMSCA(t *testing.T) {
	tel := cluster.Telemetry{NumReqs: 4, Concurrency: 8, MaxBW: 100, RealBW: 50}
	// 4/8 * (100-50)/100 = 0.25
	if got := MSCA(tel); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("MSCA=%f", got)
	}
	// Saturated device: spare clamps at 0.
	tel.RealBW = 150
	if got := MSCA(tel); got != 0 {
		t.Fatalf("saturated MSCA=%f", got)
	}
	if MSCA(cluster.Telemetry{}) != 0 {
		t.Fatal("zero telemetry MSCA")
	}
}

func TestInterferenceFactor(t *testing.T) {
	if got := InterferenceFactor(cluster.Telemetry{MaxBW: 200, RealBW: 50}); got != 0.25 {
		t.Fatalf("IF=%f", got)
	}
	if got := InterferenceFactor(cluster.Telemetry{MaxBW: 100, RealBW: 300}); got != 1 {
		t.Fatalf("IF clamp=%f", got)
	}
	if InterferenceFactor(cluster.Telemetry{}) != 0 {
		t.Fatal("zero MaxBW")
	}
}

func TestFSPerformance(t *testing.T) {
	c := ares(t)
	fs := FSPerformance(c.Node("stor00"))
	if fs.RAIDLevel != 5 || fs.NumDevices != 2 {
		t.Fatalf("fs=%+v", fs)
	}
}

func TestBlockHotness(t *testing.T) {
	c := ares(t)
	d := c.Node("comp00").Device("nvme0")
	for i := 0; i < 3; i++ {
		d.Read(11, 4096)
	}
	hot := BlockHotness(d, 5)
	if len(hot) != 1 || hot[0].Block != 11 || hot[0].Accesses != 3 {
		t.Fatalf("hot=%v", hot)
	}
}

func TestDeviceHealthAndFaultTolerance(t *testing.T) {
	tel := cluster.Telemetry{TotalBlocks: 100, BadBlocks: 10, ReplicationLevel: 3}
	if got := DeviceHealth(tel); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("health=%f", got)
	}
	if got := DeviceFaultTolerance(tel); math.Abs(got-3/0.9) > 1e-12 {
		t.Fatalf("ft=%f", got)
	}
	dead := cluster.Telemetry{TotalBlocks: 10, BadBlocks: 10, ReplicationLevel: 2}
	if DeviceFaultTolerance(dead) != 0 {
		t.Fatal("dead device ft nonzero")
	}
	if DeviceHealth(cluster.Telemetry{}) != 0 {
		t.Fatal("no blocks health")
	}
}

func TestDeviceDegradationRate(t *testing.T) {
	tel := cluster.Telemetry{TotalBlocks: 1000, BadBlocks: 100, BlocksRead: 400, BlocksWritten: 600}
	// (1-0.9)/1000 = 0.0001
	if got := DeviceDegradationRate(tel); math.Abs(got-0.0001) > 1e-15 {
		t.Fatalf("degradation=%g", got)
	}
	if DeviceDegradationRate(cluster.Telemetry{TotalBlocks: 10}) != 0 {
		t.Fatal("no-traffic degradation nonzero")
	}
}

func TestNetworkHealth(t *testing.T) {
	c := ares(t)
	nh := MeasureNetworkHealth(c, "comp00", "stor00")
	if nh.Ping <= 0 || nh.NodeA != "comp00" || nh.NodeB != "stor00" {
		t.Fatalf("nh=%+v", nh)
	}
	if !nh.Timestamp.Equal(c.Now()) {
		t.Fatal("timestamp mismatch")
	}
}

func TestAvailableNodes(t *testing.T) {
	c := ares(t)
	c.Node("comp01").SetOnline(false)
	av := AvailableNodes(c)
	if len(av.Nodes) != 3 {
		t.Fatalf("nodes=%v", av.Nodes)
	}
	for i := 1; i < len(av.Nodes); i++ {
		if av.Nodes[i-1] >= av.Nodes[i] {
			t.Fatalf("not ordered: %v", av.Nodes)
		}
	}
}

func TestTierRemainingCapacity(t *testing.T) {
	c := ares(t)
	want := 2 * 250 * cluster.GB
	if got := TierRemainingCapacity(c, cluster.TierNVMe); got != want {
		t.Fatalf("nvme remaining=%d want %d", got, want)
	}
	c.Node("comp00").Device("nvme0").Write(0, 50*cluster.GB)
	if got := TierRemainingCapacity(c, cluster.TierNVMe); got != want-50*cluster.GB {
		t.Fatalf("after write=%d", got)
	}
}

func TestEnergyPerTransfer(t *testing.T) {
	c := ares(t)
	n := c.Node("comp00")
	idle := EnergyPerTransfer(n) // no transfers: full power over 1
	if idle != 90 {
		t.Fatalf("idle ept=%f", idle)
	}
	n.Device("nvme0").Write(0, cluster.GB)
	n.Device("nvme0").Write(0, cluster.GB)
	c.Step(time.Second)
	busy := EnergyPerTransfer(n)
	if busy >= idle {
		t.Fatalf("busy ept=%f should be below idle %f", busy, idle)
	}
}

func TestSystemTime(t *testing.T) {
	c := ares(t)
	st := ReadSystemTime(c, "comp00")
	if st.NodeID != "comp00" || !st.Time.Equal(c.Now()) {
		t.Fatalf("st=%+v", st)
	}
}

func TestDeviceLoad(t *testing.T) {
	tel := cluster.Telemetry{
		BlocksRead: 500, BlocksWritten: 500,
		ReadBlocksPerSec: 10, WritBlocksPerSec: 10,
	}
	if got := DeviceLoad(tel); math.Abs(got-0.02) > 1e-12 {
		t.Fatalf("load=%f", got)
	}
	if DeviceLoad(cluster.Telemetry{}) != 0 {
		t.Fatal("fresh device load nonzero")
	}
}

func TestJobAllocations(t *testing.T) {
	c := ares(t)
	id := c.Jobs().Submit("vpic", []string{"comp00", "comp01"}, 40, c.Now())
	c.Jobs().AccountIO(id, 10, 20)
	allocs := JobAllocations(c)
	if len(allocs) != 1 {
		t.Fatalf("allocs=%v", allocs)
	}
	a := allocs[0]
	if a.JobID != id || a.NumNodes != 2 || a.ProcsPerNode != 40 || a.BytesRead != 10 || a.BytesWritten != 20 {
		t.Fatalf("alloc=%+v", a)
	}
}

func TestRankByInterference(t *testing.T) {
	c := ares(t)
	busy := c.Node("comp00").Device("nvme0")
	busy.Write(0, 2*cluster.GB) // 2 GB/s device: saturated for 1s window
	c.Step(time.Second)
	devs := c.DevicesByTier(cluster.TierNVMe)
	ranked := RankByInterference(devs)
	if ranked[0].Device.ID() != "comp01.nvme0" {
		t.Fatalf("least interfered = %s", ranked[0].Device.ID())
	}
	if ranked[1].Score <= ranked[0].Score {
		t.Fatalf("scores not ascending: %v", ranked)
	}
}

func TestRankByRemainingCapacity(t *testing.T) {
	c := ares(t)
	c.Node("comp00").Device("nvme0").Write(0, 100*cluster.GB)
	ranked := RankByRemainingCapacity(c.DevicesByTier(cluster.TierNVMe))
	if ranked[0].Device.ID() != "comp01.nvme0" {
		t.Fatalf("most free = %s", ranked[0].Device.ID())
	}
}

func TestRankByHealth(t *testing.T) {
	c := ares(t)
	bad := c.Node("comp00").Device("nvme0")
	bad.InjectBadBlocks(bad.Snapshot().TotalBlocks / 2)
	ranked := RankByHealth(c.DevicesByTier(cluster.TierNVMe))
	if ranked[0].Device.ID() != "comp01.nvme0" {
		t.Fatalf("healthiest = %s", ranked[0].Device.ID())
	}
}
