// Package insights implements the I/O Insight curations of Table 1 (§3.3):
// high-level, middleware-ready knowledge computed from the raw device and
// node telemetry of the simulated cluster. Each function mirrors one row of
// the table, using the table's formalization.
package insights

import (
	"sort"
	"time"

	"repro/internal/cluster"
)

// MSCA (row 1) — Medium Sensitivity to Concurrent Access — indicates the
// amount of concurrent I/O a device can handle:
//
//	NumReqs/DevC * (MaxBW-RealBW)/MaxBW
//
// Lower values mean the device is well-suited for more concurrent I/O.
func MSCA(t cluster.Telemetry) float64 {
	if t.Concurrency == 0 || t.MaxBW == 0 {
		return 0
	}
	spare := (t.MaxBW - t.RealBW) / t.MaxBW
	if spare < 0 {
		spare = 0
	}
	return float64(t.NumReqs) / float64(t.Concurrency) * spare
}

// InterferenceFactor (row 2) indicates the degree to which I/O is being
// interfered with: RealBW/MaxBW. Near 0 means idle, near 1 saturated.
func InterferenceFactor(t cluster.Telemetry) float64 {
	if t.MaxBW == 0 {
		return 0
	}
	f := t.RealBW / t.MaxBW
	if f > 1 {
		f = 1
	}
	return f
}

// FSPerformance (row 3) reports a node's filesystem performance
// characteristics verbatim.
func FSPerformance(n *cluster.Node) cluster.FSInfo { return n.FS() }

// BlockHotness (row 4) returns the hottest blocks of a device as
// (BlockID, access frequency) pairs.
func BlockHotness(d *cluster.Device, max int) []cluster.BlockHeat { return d.HotBlocks(max) }

// DeviceHealth (row 5): 1 - NumBadBlocks/TotalNumBlocks.
func DeviceHealth(t cluster.Telemetry) float64 {
	if t.TotalBlocks == 0 {
		return 0
	}
	return 1 - float64(t.BadBlocks)/float64(t.TotalBlocks)
}

// NetworkHealth (row 6) is one ping sample between two nodes.
type NetworkHealth struct {
	Timestamp time.Time
	NodeA     string
	NodeB     string
	Ping      time.Duration
}

// MeasureNetworkHealth samples the ping between two nodes.
func MeasureNetworkHealth(c *cluster.Cluster, a, b string) NetworkHealth {
	return NetworkHealth{
		Timestamp: c.Now(),
		NodeA:     a,
		NodeB:     b,
		Ping:      c.Network().Ping(a, b),
	}
}

// DeviceFaultTolerance (row 7): ReplicationLevel / DeviceHealth. Higher
// means data on the device survives more failures.
func DeviceFaultTolerance(t cluster.Telemetry) float64 {
	h := DeviceHealth(t)
	if h == 0 {
		return 0
	}
	return float64(t.ReplicationLevel) / h
}

// DeviceDegradationRate (row 8): lost health per block of lifetime traffic,
// i.e. (1 - health) / (blocks read + blocks written). Zero traffic gives 0.
func DeviceDegradationRate(t cluster.Telemetry) float64 {
	traffic := t.BlocksRead + t.BlocksWritten
	if traffic == 0 {
		return 0
	}
	return (1 - DeviceHealth(t)) / float64(traffic)
}

// NodeAvailability (row 9) is the ordered list of online nodes.
type NodeAvailability struct {
	Timestamp time.Time
	Nodes     []string
}

// AvailableNodes lists online nodes, sorted, with a timestamp.
func AvailableNodes(c *cluster.Cluster) NodeAvailability {
	return NodeAvailability{Timestamp: c.Now(), Nodes: c.OnlineNodes()}
}

// TierRemainingCapacity (row 10): sum over the tier's devices of
// DeviceCapacity_i - CapacityUsed_i.
func TierRemainingCapacity(c *cluster.Cluster, tier cluster.Tier) int64 {
	var sum int64
	for _, d := range c.DevicesByTier(tier) {
		sum += d.Remaining()
	}
	return sum
}

// EnergyPerTransfer (rows 11/14): PowerPerSec / TransfersPerSec for a node.
// Nodes doing no transfers report +Inf-avoiding 0-transfer semantics: the
// caller-visible value is the full power draw against one transfer, which
// ranks idle-but-powered nodes as expensive — the decommissioning signal the
// table describes.
func EnergyPerTransfer(n *cluster.Node) float64 {
	tps := n.TransfersPerSec()
	if tps <= 0 {
		tps = 1
	}
	return n.PowerWatts() / tps
}

// SystemTime (row 12) is a node's reported clock.
type SystemTime struct {
	NodeID string
	Time   time.Time
}

// ReadSystemTime samples a node's clock (all simulated nodes share the
// cluster clock; drift can be modeled by the caller).
func ReadSystemTime(c *cluster.Cluster, nodeID string) SystemTime {
	return SystemTime{NodeID: nodeID, Time: c.Now()}
}

// DeviceLoad (row 13): (Blk_read/s + Blk_written/s) / (Blk_read + Blk_written)
// — the fraction of the device's lifetime traffic happening right now.
func DeviceLoad(t cluster.Telemetry) float64 {
	lifetime := float64(t.BlocksRead + t.BlocksWritten)
	if lifetime == 0 {
		return 0
	}
	return (t.ReadBlocksPerSec + t.WritBlocksPerSec) / lifetime
}

// AllocationCharacteristics (row 15) describes one job's resources.
type AllocationCharacteristics struct {
	Timestamp    time.Time
	JobID        int
	NumNodes     int
	ProcsPerNode int
	BytesRead    int64
	BytesWritten int64
}

// JobAllocations reports allocation characteristics for every running job.
func JobAllocations(c *cluster.Cluster) []AllocationCharacteristics {
	jobs := c.Jobs().List()
	out := make([]AllocationCharacteristics, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, AllocationCharacteristics{
			Timestamp:    c.Now(),
			JobID:        j.ID,
			NumNodes:     len(j.Nodes),
			ProcsPerNode: j.ProcsPerNode,
			BytesRead:    j.BytesRead,
			BytesWritten: j.BytesWritten,
		})
	}
	return out
}

// Ranking helpers used by the middleware engines --------------------------

// DeviceScore pairs a device with a score for sorting.
type DeviceScore struct {
	Device *cluster.Device
	Score  float64
}

// RankByInterference orders devices least-interfered first — the I/O
// scheduler use case of rows 1-2.
func RankByInterference(devs []*cluster.Device) []DeviceScore {
	out := make([]DeviceScore, 0, len(devs))
	for _, d := range devs {
		out = append(out, DeviceScore{Device: d, Score: InterferenceFactor(d.Snapshot())})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	return out
}

// RankByRemainingCapacity orders devices most-free first — the DPE use case
// of row 10.
func RankByRemainingCapacity(devs []*cluster.Device) []DeviceScore {
	out := make([]DeviceScore, 0, len(devs))
	for _, d := range devs {
		out = append(out, DeviceScore{Device: d, Score: float64(d.Remaining())})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// RankByHealth orders devices healthiest first — rows 5/7/8.
func RankByHealth(devs []*cluster.Device) []DeviceScore {
	out := make([]DeviceScore, 0, len(devs))
	for _, d := range devs {
		out = append(out, DeviceScore{Device: d, Score: DeviceHealth(d.Snapshot())})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}
