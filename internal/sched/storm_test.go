package sched

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSlowCallbackNoFireStorm is the regression test for the stale-now guard
// bug: Run compared the reprogrammed deadline against a now captured before
// the callback executed, so a callback slower than its own next interval
// reprogrammed into the past and spuriously re-fired immediately. With the
// fix, now is refreshed after the callback, the guard clamps the deadline
// forward, and exactly one fire happens per elapsed interval.
func TestSlowCallbackNoFireStorm(t *testing.T) {
	clock := NewSimClock(time.Unix(100, 0))
	l := NewLoop(clock)
	r := obs.NewRegistry()
	l.Instrument(r)
	l.RunAsync()
	defer l.Stop()

	var fires atomic.Int32
	if _, err := l.Add(time.Second, func(time.Time) time.Duration {
		// The first fire simulates a callback 5x slower than the interval it
		// asks for next.
		if fires.Add(1) == 1 {
			clock.Advance(5 * time.Second)
		}
		return time.Second
	}); err != nil {
		t.Fatal(err)
	}

	// Deliver the first tick: wait for the loop to arm a timer, then advance
	// one interval (repeating in case the arm raced the advance).
	for fires.Load() == 0 {
		waitFor(t, func() bool { return fires.Load() >= 1 || clock.PendingWaiters() >= 1 })
		if fires.Load() == 0 {
			clock.Advance(time.Second)
		}
	}

	// The loop must settle: one fire, then a fresh timer armed one interval
	// past the refreshed now (not a burst catching up to the stale now).
	// Pre-fix, the stale deadline re-armed in the past, so the loop kept
	// firing without any clock advance and never parked on a future
	// deadline with just one fire recorded.
	waitFor(t, func() bool {
		next, ok := clock.NextDeadline()
		return ok && next.After(clock.Now()) && fires.Load() >= 1
	})
	if got := fires.Load(); got != 1 {
		t.Fatalf("slow callback re-fired %d times, want exactly 1", got)
	}
	if got := l.Overdue(); got != 1 {
		t.Fatalf("Overdue = %d, want 1 (the clamped deadline)", got)
	}
	s := r.Snapshot()
	if s.Counter("sched_fires_total") != 1 || s.Counter("sched_overdue_fires_total") != 1 {
		t.Fatalf("obs counters = %v", s.Counters)
	}
	// The callback runtime histogram saw the 5s simulated execution.
	h := s.Histograms["sched_callback_seconds"]
	if h.Count != 1 || h.Sum < 4.9 {
		t.Fatalf("callback runtime histogram = %+v", h)
	}

	// After the clamp the loop keeps its cadence: the next tick fires once.
	for fires.Load() == 1 {
		waitFor(t, func() bool { return fires.Load() >= 2 || clock.PendingWaiters() >= 1 })
		if fires.Load() == 1 {
			clock.Advance(time.Second)
		}
	}
	waitFor(t, func() bool { return fires.Load() == 2 })
}
