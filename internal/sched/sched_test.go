package sched

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLoopFiresOnce(t *testing.T) {
	l := NewLoop(nil)
	l.RunAsync()
	defer l.Stop()
	done := make(chan struct{})
	var once sync.Once
	if _, err := l.Add(time.Millisecond, func(time.Time) time.Duration {
		once.Do(func() { close(done) })
		return 0 // one-shot
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	waitFor(t, func() bool { return l.Pending() == 0 })
}

// waitFor spins (yielding, never sleeping) until cond holds; the wall-clock
// deadline is only a failure backstop, not synchronization.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatal("condition never met")
}

// waitForDeadline spins until the loop has parked on the virtual clock with
// its earliest deadline at want — i.e. the previous fire is fully processed
// and the next advance will be observed. Deterministic replacement for
// "advance then sleep a little".
func waitForDeadline(t *testing.T, clock *SimClock, want time.Time) {
	t.Helper()
	waitFor(t, func() bool {
		next, ok := clock.NextDeadline()
		return ok && next.Equal(want)
	})
}

func TestLoopRepeats(t *testing.T) {
	l := NewLoop(nil)
	l.RunAsync()
	defer l.Stop()
	var n atomic.Int32
	l.Add(time.Millisecond, func(time.Time) time.Duration {
		if n.Add(1) >= 5 {
			return 0
		}
		return time.Millisecond
	})
	waitFor(t, func() bool { return n.Load() >= 5 })
	if got := l.Fired(); got < 5 {
		t.Fatalf("Fired=%d", got)
	}
}

func TestAdaptiveIntervalReprogramming(t *testing.T) {
	// The callback returns a different interval each fire; verify virtual
	// fire times follow the re-programmed schedule exactly.
	clock := NewSimClock(time.Unix(0, 0))
	l := NewLoop(clock)
	l.RunAsync()
	defer l.Stop()

	intervals := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second}
	var mu sync.Mutex
	var fires []time.Time
	idx := 0
	l.Add(time.Second, func(now time.Time) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		fires = append(fires, now)
		if idx >= len(intervals) {
			return 0
		}
		d := intervals[idx]
		idx++
		return d
	})

	// Virtual fire times follow the reprogrammed intervals: 1, 1+1, 2+2,
	// 4+4 seconds. Advance deadline-by-deadline, waiting (sleep-free) for
	// the loop to park on the next one before moving the clock again.
	wantSecs := []int64{1, 2, 4, 8}
	for i, sec := range wantSecs {
		waitForDeadline(t, clock, time.Unix(sec, 0))
		clock.AdvanceTo(time.Unix(sec, 0))
		if i == len(wantSecs)-1 {
			waitFor(t, func() bool { return l.Pending() == 0 })
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fires) != len(wantSecs) {
		t.Fatalf("fires=%v", fires)
	}
	for i, f := range fires {
		if f.Unix() != wantSecs[i] {
			t.Fatalf("fire %d at %ds, want %ds", i, f.Unix(), wantSecs[i])
		}
	}
}

func TestCancel(t *testing.T) {
	l := NewLoop(nil)
	l.RunAsync()
	defer l.Stop()
	var n atomic.Int32
	id, _ := l.Add(time.Hour, func(time.Time) time.Duration { n.Add(1); return 0 })
	if !l.Cancel(id) {
		t.Fatal("Cancel returned false")
	}
	if l.Cancel(id) {
		t.Fatal("double Cancel returned true")
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending=%d", l.Pending())
	}
	if n.Load() != 0 {
		t.Fatal("cancelled timer fired")
	}
}

func TestAddAfterStop(t *testing.T) {
	l := NewLoop(nil)
	l.RunAsync()
	l.Stop()
	if _, err := l.Add(time.Millisecond, func(time.Time) time.Duration { return 0 }); err != ErrStopped {
		t.Fatalf("err=%v", err)
	}
	l.Stop() // idempotent
}

func TestManyTimersOrdering(t *testing.T) {
	clock := NewSimClock(time.Unix(0, 0))
	l := NewLoop(clock)
	var mu sync.Mutex
	var order []int
	// Register every timer before the loop starts so the loop only ever
	// parks on the earliest pending deadline — each fire can then be
	// delivered with a deadline-synchronized advance, no sleeps.
	for i := 10; i >= 1; i-- {
		i := i
		l.Add(time.Duration(i)*time.Second, func(time.Time) time.Duration {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return 0
		})
	}
	l.RunAsync()
	defer l.Stop()
	for i := 1; i <= 10; i++ {
		waitForDeadline(t, clock, time.Unix(int64(i), 0))
		clock.AdvanceTo(time.Unix(int64(i), 0))
	}
	waitFor(t, func() bool { return l.Pending() == 0 })
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 10 {
		t.Fatalf("fired %d of 10: %v", len(order), order)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order=%v", order)
		}
	}
}

func TestSimClockAfterImmediate(t *testing.T) {
	c := NewSimClock(time.Unix(100, 0))
	select {
	case ts := <-c.After(0):
		if ts.Unix() != 100 {
			t.Fatalf("ts=%v", ts)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestSimClockAdvancePartial(t *testing.T) {
	c := NewSimClock(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	c.Advance(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	c.Advance(5 * time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("did not fire at due time")
	}
	if c.PendingWaiters() != 0 {
		t.Fatalf("PendingWaiters=%d", c.PendingWaiters())
	}
}

func BenchmarkLoopAddCancel(b *testing.B) {
	l := NewLoop(nil)
	l.RunAsync()
	defer l.Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id, _ := l.Add(time.Hour, func(time.Time) time.Duration { return 0 })
		l.Cancel(id)
	}
}
