package sched

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLoopFiresOnce(t *testing.T) {
	l := NewLoop(nil)
	l.RunAsync()
	defer l.Stop()
	done := make(chan struct{})
	var once sync.Once
	if _, err := l.Add(time.Millisecond, func(time.Time) time.Duration {
		once.Do(func() { close(done) })
		return 0 // one-shot
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	waitFor(t, func() bool { return l.Pending() == 0 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never met")
}

func TestLoopRepeats(t *testing.T) {
	l := NewLoop(nil)
	l.RunAsync()
	defer l.Stop()
	var n atomic.Int32
	l.Add(time.Millisecond, func(time.Time) time.Duration {
		if n.Add(1) >= 5 {
			return 0
		}
		return time.Millisecond
	})
	waitFor(t, func() bool { return n.Load() >= 5 })
	if got := l.Fired(); got < 5 {
		t.Fatalf("Fired=%d", got)
	}
}

func TestAdaptiveIntervalReprogramming(t *testing.T) {
	// The callback returns a different interval each fire; verify virtual
	// fire times follow the re-programmed schedule exactly.
	clock := NewSimClock(time.Unix(0, 0))
	l := NewLoop(clock)
	l.RunAsync()
	defer l.Stop()

	intervals := []time.Duration{time.Second, 2 * time.Second, 4 * time.Second}
	var mu sync.Mutex
	var fires []time.Time
	idx := 0
	l.Add(time.Second, func(now time.Time) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		fires = append(fires, now)
		if idx >= len(intervals) {
			return 0
		}
		d := intervals[idx]
		idx++
		return d
	})

	// Let the loop block on its first wait before advancing.
	waitFor(t, func() bool { return clock.PendingWaiters() > 0 })
	for i := 0; i < 16; i++ {
		clock.Advance(time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	wantSecs := []int64{1, 2, 4, 8}
	if len(fires) != len(wantSecs) {
		t.Fatalf("fires=%v", fires)
	}
	for i, f := range fires {
		if f.Unix() != wantSecs[i] {
			t.Fatalf("fire %d at %ds, want %ds", i, f.Unix(), wantSecs[i])
		}
	}
}

func TestCancel(t *testing.T) {
	l := NewLoop(nil)
	l.RunAsync()
	defer l.Stop()
	var n atomic.Int32
	id, _ := l.Add(time.Hour, func(time.Time) time.Duration { n.Add(1); return 0 })
	if !l.Cancel(id) {
		t.Fatal("Cancel returned false")
	}
	if l.Cancel(id) {
		t.Fatal("double Cancel returned true")
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending=%d", l.Pending())
	}
	if n.Load() != 0 {
		t.Fatal("cancelled timer fired")
	}
}

func TestAddAfterStop(t *testing.T) {
	l := NewLoop(nil)
	l.RunAsync()
	l.Stop()
	if _, err := l.Add(time.Millisecond, func(time.Time) time.Duration { return 0 }); err != ErrStopped {
		t.Fatalf("err=%v", err)
	}
	l.Stop() // idempotent
}

func TestManyTimersOrdering(t *testing.T) {
	clock := NewSimClock(time.Unix(0, 0))
	l := NewLoop(clock)
	l.RunAsync()
	defer l.Stop()
	var mu sync.Mutex
	var order []int
	for i := 10; i >= 1; i-- {
		i := i
		l.Add(time.Duration(i)*time.Second, func(time.Time) time.Duration {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return 0
		})
	}
	waitFor(t, func() bool { return clock.PendingWaiters() > 0 })
	for i := 0; i < 12; i++ {
		clock.Advance(time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 10 {
		t.Fatalf("fired %d of 10: %v", len(order), order)
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("order=%v", order)
		}
	}
}

func TestSimClockAfterImmediate(t *testing.T) {
	c := NewSimClock(time.Unix(100, 0))
	select {
	case ts := <-c.After(0):
		if ts.Unix() != 100 {
			t.Fatalf("ts=%v", ts)
		}
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestSimClockAdvancePartial(t *testing.T) {
	c := NewSimClock(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	c.Advance(5 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	c.Advance(5 * time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("did not fire at due time")
	}
	if c.PendingWaiters() != 0 {
		t.Fatalf("PendingWaiters=%d", c.PendingWaiters())
	}
}

func BenchmarkLoopAddCancel(b *testing.B) {
	l := NewLoop(nil)
	l.RunAsync()
	defer l.Stop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id, _ := l.Add(time.Hour, func(time.Time) time.Duration { return 0 })
		l.Cancel(id)
	}
}
