package sched

import (
	"sort"
	"sync"
	"time"
)

// SimClock is a manually-advanced Clock for deterministic tests and for
// replaying captured workloads (the paper replays HACC traces "so that there
// would be minimal issues with time drift or interference between runs",
// §4.3.1). Advance moves virtual time forward, delivering any pending After
// ticks in order.
type SimClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []simWaiter
}

type simWaiter struct {
	when time.Time
	ch   chan time.Time
}

// NewSimClock returns a simulated clock starting at start.
func NewSimClock(start time.Time) *SimClock {
	return &SimClock{now: start}
}

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock. The returned channel fires when virtual time
// reaches now+d via Advance.
func (c *SimClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	when := c.now.Add(d)
	if d <= 0 {
		ch <- when
		return ch
	}
	c.waiters = append(c.waiters, simWaiter{when: when, ch: ch})
	sort.SliceStable(c.waiters, func(i, j int) bool { return c.waiters[i].when.Before(c.waiters[j].when) })
	return ch
}

// Advance moves virtual time forward by d, firing due waiters.
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	c.now = target
	var due []simWaiter
	i := 0
	for ; i < len(c.waiters); i++ {
		if c.waiters[i].when.After(target) {
			break
		}
		due = append(due, c.waiters[i])
	}
	c.waiters = c.waiters[i:]
	c.mu.Unlock()
	for _, w := range due {
		w.ch <- w.when
	}
}

// PendingWaiters returns how many After channels have not yet fired.
func (c *SimClock) PendingWaiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
