package sched

import (
	"time"

	"repro/internal/sim"
)

// SimClock is the manually-advanced virtual clock for deterministic tests
// and for replaying captured workloads. It is now provided by internal/sim
// (this alias keeps existing call sites and the apollo facade working);
// sim.Virtual adds Sleep, re-armable timers, Step/NextDeadline event-loop
// primitives, and BlockUntil synchronization on top of the old SimClock.
type SimClock = sim.Virtual

// NewSimClock returns a simulated clock starting at start.
func NewSimClock(start time.Time) *SimClock { return sim.NewVirtual(start) }
