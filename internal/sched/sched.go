// Package sched provides the adaptive timer scheduler Apollo uses to drive
// monitor hooks. It replaces libuv from the original implementation: a single
// event-loop goroutine multiplexes many timers on a min-heap, and each
// timer's interval can be re-programmed on every fire — the mechanism the
// adaptive/dynamic monitoring interval (§3.4.1) relies on.
package sched

import (
	"container/heap"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Callback runs when a timer fires. It receives the scheduled fire time and
// returns the next interval; returning 0 or less stops the timer. Callbacks
// run on the scheduler goroutine, so they must be short (hooks hand work to
// their vertex goroutine).
type Callback func(now time.Time) (next time.Duration)

// Clock abstracts time so benchmarks and the simulation harness can run the
// loop on virtual time. It is the minimal subset of sim.Clock the loop
// needs, so any sim.Clock (sim.Wall, *sim.Virtual) drives it.
type Clock interface {
	Now() time.Time
	// After returns a channel that delivers one tick after d.
	After(d time.Duration) <-chan time.Time
}

// RealClock is the wall-clock implementation of Clock, now an alias of
// sim.Wall so one value satisfies both this package's Clock and the full
// sim.Clock the vertex/transport layers take.
type RealClock = sim.Wall

// timer is one scheduled callback.
type timer struct {
	id    uint64
	when  time.Time
	cb    Callback
	index int // heap index, -1 when removed
}

type timerHeap []*timer

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].when.Before(h[j].when) }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *timerHeap) Push(x interface{}) { t := x.(*timer); t.index = len(*h); *h = append(*h, t) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}

// Loop is a timer event loop. Create with NewLoop, add timers, then Run (or
// RunAsync). Stop terminates the loop.
type Loop struct {
	clock Clock

	mu      sync.Mutex
	heap    timerHeap
	byID    map[uint64]*timer
	nextID  uint64
	wake    chan struct{}
	stopped chan struct{}
	done    chan struct{}
	running bool
	fired   uint64
	overdue uint64 // fires whose next deadline had already passed

	// Optional obs instruments (nil-safe no-ops when not instrumented).
	obsFires   *obs.Counter
	obsOverdue *obs.Counter
	obsRuntime *obs.Histogram
}

// NewLoop returns a loop driven by clock (nil means the real clock).
func NewLoop(clock Clock) *Loop {
	if clock == nil {
		clock = RealClock{}
	}
	return &Loop{
		clock:   clock,
		byID:    make(map[uint64]*timer),
		wake:    make(chan struct{}, 1),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// ErrStopped is returned by Add after Stop.
var ErrStopped = errors.New("sched: loop stopped")

// Add schedules cb to first fire after d. It returns the timer id, usable
// with Cancel.
func (l *Loop) Add(d time.Duration, cb Callback) (uint64, error) {
	l.mu.Lock()
	select {
	case <-l.stopped:
		l.mu.Unlock()
		return 0, ErrStopped
	default:
	}
	l.nextID++
	id := l.nextID
	t := &timer{id: id, when: l.clock.Now().Add(d), cb: cb}
	heap.Push(&l.heap, t)
	l.byID[id] = t
	l.mu.Unlock()
	l.kick()
	return id, nil
}

// Cancel removes a timer. It reports whether the timer was still scheduled.
func (l *Loop) Cancel(id uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	t, ok := l.byID[id]
	if !ok {
		return false
	}
	delete(l.byID, id)
	if t.index >= 0 {
		heap.Remove(&l.heap, t.index)
	}
	return true
}

// Fired returns the total number of callback invocations so far.
func (l *Loop) Fired() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fired
}

// Overdue returns how many reprogrammed deadlines had already passed when
// their callback returned (slow callbacks clamped by the fire-storm guard).
func (l *Loop) Overdue() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.overdue
}

// Instrument registers the loop's instruments on r: sched_fires_total,
// sched_overdue_fires_total, and the sched_callback_seconds runtime
// histogram. Call before Run.
func (l *Loop) Instrument(r *obs.Registry) {
	l.mu.Lock()
	l.obsFires = r.Counter("sched_fires_total")
	l.obsOverdue = r.Counter("sched_overdue_fires_total")
	l.obsRuntime = r.Histogram("sched_callback_seconds")
	l.mu.Unlock()
}

// Pending returns the number of scheduled timers.
func (l *Loop) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.byID)
}

func (l *Loop) kick() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// RunAsync starts Run on a new goroutine.
func (l *Loop) RunAsync() { go l.Run() }

// Run executes the event loop until Stop is called. It may be called once.
func (l *Loop) Run() {
	l.mu.Lock()
	if l.running {
		l.mu.Unlock()
		panic("sched: Run called twice")
	}
	l.running = true
	l.mu.Unlock()
	defer close(l.done)
	for {
		l.mu.Lock()
		now := l.clock.Now()
		// Fire everything due.
		for len(l.heap) > 0 && !l.heap[0].when.After(now) {
			t := heap.Pop(&l.heap).(*timer)
			if _, live := l.byID[t.id]; !live {
				continue // cancelled while queued
			}
			l.fired++
			l.obsFires.Inc()
			l.mu.Unlock()
			cbStart := l.clock.Now()
			next := t.cb(t.when)
			l.mu.Lock()
			// Refresh now AFTER the callback: comparing the reprogrammed
			// deadline against a stale pre-callback now let a slow callback
			// schedule into the past and spuriously re-fire immediately.
			now = l.clock.Now()
			l.obsRuntime.ObserveDuration(now.Sub(cbStart))
			if _, live := l.byID[t.id]; live {
				if next > 0 {
					t.when = t.when.Add(next)
					if t.when.Before(now) {
						// Never let a slow callback cause a fire storm.
						l.overdue++
						l.obsOverdue.Inc()
						t.when = now.Add(next)
					}
					heap.Push(&l.heap, t)
				} else {
					delete(l.byID, t.id)
				}
			}
		}
		var wait <-chan time.Time
		if len(l.heap) > 0 {
			d := l.heap[0].when.Sub(now)
			if d < 0 {
				d = 0
			}
			wait = l.clock.After(d)
		}
		l.mu.Unlock()

		select {
		case <-l.stopped:
			return
		case <-l.wake:
		case <-wait:
		}
	}
}

// Stop terminates the loop and waits for Run to return (when running).
func (l *Loop) Stop() {
	l.mu.Lock()
	select {
	case <-l.stopped:
		l.mu.Unlock()
		return
	default:
		close(l.stopped)
	}
	running := l.running
	l.mu.Unlock()
	if running {
		<-l.done
	}
}
