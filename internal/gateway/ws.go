package gateway

import (
	"bufio"
	"context"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"

	apiv1 "repro/api/v1"
)

// The gateway speaks RFC 6455 directly — a deliberately small server-side
// subset (unfragmented frames, text data, ping/pong/close control) so the
// public edge carries no third-party dependency. Each subscription frame is
// one JSON text message; the server closes with status 1008 on slow-consumer
// eviction and 1001 on graceful drain.

// wsGUID is the RFC 6455 §1.3 handshake constant.
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// wsMaxClientFrame bounds client→server payloads (the subscribe stream is
// one-way; clients only send control frames).
const wsMaxClientFrame = 1 << 16

// WebSocket opcodes.
const (
	wsOpText  = 0x1
	wsOpClose = 0x8
	wsOpPing  = 0x9
	wsOpPong  = 0xA
)

// WebSocket close statuses.
const (
	wsStatusGoingAway       = 1001
	wsStatusPolicyViolation = 1008
)

// isWebSocketUpgrade reports whether r asks for a WebSocket upgrade.
func isWebSocketUpgrade(r *http.Request) bool {
	if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		return false
	}
	for _, part := range strings.Split(r.Header.Get("Connection"), ",") {
		if strings.EqualFold(strings.TrimSpace(part), "upgrade") {
			return true
		}
	}
	return false
}

// wsAcceptKey computes the Sec-WebSocket-Accept response value.
func wsAcceptKey(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// serveWS upgrades the request and pumps subscription frames as JSON text
// messages until the subscription ends or the client goes away.
func (g *Gateway) serveWS(w http.ResponseWriter, r *http.Request, principal, metric string, afterID uint64) {
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" || r.Header.Get("Sec-WebSocket-Version") != "13" {
		writeError(w, apiv1.Errorf(apiv1.CodeBadRequest, false, "bad websocket handshake"))
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		writeError(w, apiv1.Errorf(apiv1.CodeInternal, false, "response writer cannot hijack"))
		return
	}
	// Attach before hijacking so a refused subscription is still a clean
	// JSON error response.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub, err := g.Attach(ctx, principal, metric, afterID)
	if err != nil {
		writeError(w, apiError(err))
		return
	}
	defer sub.Close()
	conn, brw, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAcceptKey(key) + "\r\n\r\n"
	if _, err := brw.WriteString(resp); err != nil {
		return
	}
	if err := brw.Flush(); err != nil {
		return
	}

	wc := &wsConn{conn: conn}
	// Reader: answers pings, detects client close/disconnect, cancels the
	// writer.
	go func() {
		defer cancel()
		wc.readLoop(brw.Reader)
	}()

	for {
		f, more := sub.Next(ctx)
		if f.Type != "" {
			b, err := json.Marshal(f)
			if err != nil {
				return
			}
			if err := wc.writeFrame(wsOpText, b); err != nil {
				return
			}
		}
		if !more {
			status := wsStatusGoingAway
			if f.Type == apiv1.FrameError {
				status = wsStatusPolicyViolation
			}
			wc.writeClose(status, string(f.Type))
			return
		}
	}
}

// wsConn serializes writes to one upgraded connection (the frame pump and
// the reader's pong replies share it).
type wsConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// writeFrame writes one unmasked server frame.
func (c *wsConn) writeFrame(opcode byte, payload []byte) error {
	var header [10]byte
	header[0] = 0x80 | opcode // FIN set: no fragmentation
	n := 2
	switch {
	case len(payload) < 126:
		header[1] = byte(len(payload))
	case len(payload) <= 0xFFFF:
		header[1] = 126
		binary.BigEndian.PutUint16(header[2:4], uint16(len(payload)))
		n = 4
	default:
		header[1] = 127
		binary.BigEndian.PutUint64(header[2:10], uint64(len(payload)))
		n = 10
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.conn.Write(header[:n]); err != nil {
		return err
	}
	_, err := c.conn.Write(payload)
	return err
}

// writeClose sends a close frame with status and reason (best effort).
func (c *wsConn) writeClose(status int, reason string) {
	payload := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(payload, uint16(status))
	copy(payload[2:], reason)
	c.writeFrame(wsOpClose, payload)
}

// readLoop consumes client frames: pings are answered, a close frame (or
// any read error, including disconnect) ends the loop. Data frames on this
// one-way stream are discarded.
func (c *wsConn) readLoop(r *bufio.Reader) {
	for {
		opcode, payload, err := wsReadFrame(r)
		if err != nil {
			return
		}
		switch opcode {
		case wsOpClose:
			c.writeFrame(wsOpClose, payload) // echo status, RFC 6455 §5.5.1
			return
		case wsOpPing:
			if c.writeFrame(wsOpPong, payload) != nil {
				return
			}
		}
	}
}

// wsReadFrame reads one client frame. Client frames must be masked
// (RFC 6455 §5.1) and unfragmented.
func wsReadFrame(r *bufio.Reader) (opcode byte, payload []byte, err error) {
	var h [2]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, nil, err
	}
	if h[0]&0x80 == 0 {
		return 0, nil, errors.New("gateway: fragmented websocket frames unsupported")
	}
	opcode = h[0] & 0x0F
	masked := h[1]&0x80 != 0
	length := uint64(h[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if !masked {
		return 0, nil, errors.New("gateway: client frames must be masked")
	}
	if length > wsMaxClientFrame {
		return 0, nil, fmt.Errorf("gateway: client frame of %d bytes exceeds %d", length, wsMaxClientFrame)
	}
	var mask [4]byte
	if _, err := io.ReadFull(r, mask[:]); err != nil {
		return 0, nil, err
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	for i := range payload {
		payload[i] ^= mask[i%4]
	}
	return opcode, payload, nil
}
