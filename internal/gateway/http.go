package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	apiv1 "repro/api/v1"
	"repro/internal/aqe"
)

// writeJSON writes v as the 200 response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeError writes the api/v1 error envelope with its mapped status.
func writeError(w http.ResponseWriter, e *apiv1.Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Code.HTTPStatus())
	json.NewEncoder(w).Encode(e)
}

// apiError classifies err onto the public contract.
func apiError(err error) *apiv1.Error {
	var ae *apiv1.Error
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, aqe.ErrNoSuchTable):
		return apiv1.Errorf(apiv1.CodeNoSuchMetric, false, "%v", err)
	case errors.Is(err, ErrUnavailable):
		return apiv1.Errorf(apiv1.CodeUnavailable, true, "%v", err)
	case isParseError(err):
		return apiv1.Errorf(apiv1.CodeBadRequest, false, "%v", err)
	default:
		return apiv1.Errorf(apiv1.CodeInternal, false, "%v", err)
	}
}

// isParseError reports whether err came out of the AQE front end rather
// than execution — user input, not server fault.
func isParseError(err error) bool {
	s := err.Error()
	return strings.HasPrefix(s, "aqe:")
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := apiv1.HealthResponse{Status: "ok"}
	if g.backend.Degraded() {
		resp.Status = "degraded"
		resp.Degraded = true
	}
	if g.isDraining() {
		resp.Status = "draining"
	}
	writeJSON(w, resp)
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if g.isDraining() {
		writeError(w, apiv1.Errorf(apiv1.CodeDraining, true, "gateway draining"))
		return
	}
	writeJSON(w, apiv1.HealthResponse{Status: "ok", Degraded: g.backend.Degraded()})
}

// handleQuery serves POST /api/v1/query. Every principal rides the same
// prepared-plan cache: plans are immutable and the LRU is shared, so one
// principal's prepare is every principal's hit.
func (g *Gateway) handleQuery(w http.ResponseWriter, r *http.Request, principal string) {
	var req apiv1.QueryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, apiv1.Errorf(apiv1.CodeBadRequest, false, "bad request body: %v", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, apiv1.Errorf(apiv1.CodeBadRequest, false, "empty query"))
		return
	}
	res, err := g.backend.Query(req.Query)
	if err != nil {
		writeError(w, apiError(err))
		return
	}
	writeJSON(w, queryResponse(res))
}

// queryResponse renders an AQE result on the public contract.
func queryResponse(res *aqe.Result) apiv1.QueryResponse {
	out := apiv1.QueryResponse{Columns: res.Columns, Rows: make([][]apiv1.Value, len(res.Rows))}
	for i, row := range res.Rows {
		cells := make([]apiv1.Value, len(row))
		for j, c := range row {
			switch c.Kind {
			case aqe.CellInt:
				cells[j] = apiv1.IntValue(c.Int)
			case aqe.CellFloat:
				cells[j] = apiv1.FloatValue(c.F)
			default:
				cells[j] = apiv1.StringValue(c.Str)
			}
		}
		out.Rows[i] = cells
	}
	return out
}

func (g *Gateway) handleTopics(w http.ResponseWriter, r *http.Request, principal string) {
	topics, err := g.backend.Topics(r.Context())
	if err != nil {
		writeError(w, apiError(err))
		return
	}
	writeJSON(w, apiv1.TopicsResponse{Topics: topics})
}

func (g *Gateway) handleLatest(w http.ResponseWriter, r *http.Request, principal string) {
	metric := r.PathValue("metric")
	in, ok := g.backend.Latest(metric)
	if !ok {
		writeError(w, apiv1.Errorf(apiv1.CodeNoSuchMetric, false, "no data for %q", metric))
		return
	}
	writeJSON(w, tupleFromInfo(in, 0))
}

func (g *Gateway) handleRetention(w http.ResponseWriter, r *http.Request, principal string) {
	metrics, err := g.backend.Retention()
	if err != nil {
		writeError(w, apiError(err))
		return
	}
	writeJSON(w, apiv1.RetentionResponse{Metrics: metrics})
}

// handleSubscribe serves GET /api/v1/subscribe/{metric}: a WebSocket when
// the request asks for an upgrade, SSE otherwise. ?after=N resumes after
// stream ID N (SSE clients may use the standard Last-Event-ID header).
func (g *Gateway) handleSubscribe(w http.ResponseWriter, r *http.Request, principal string) {
	metric := r.PathValue("metric")
	afterID, err := resumePoint(r)
	if err != nil {
		writeError(w, apiv1.Errorf(apiv1.CodeBadRequest, false, "%v", err))
		return
	}
	if isWebSocketUpgrade(r) {
		g.serveWS(w, r, principal, metric, afterID)
		return
	}
	g.serveSSE(w, r, principal, metric, afterID)
}

// resumePoint reads the resume cursor from ?after= or Last-Event-ID.
func resumePoint(r *http.Request) (uint64, error) {
	raw := r.URL.Query().Get("after")
	if raw == "" {
		raw = r.Header.Get("Last-Event-ID")
	}
	if raw == "" {
		return 0, nil
	}
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad resume id %q", raw)
	}
	return id, nil
}

// serveSSE streams frames as Server-Sent Events: tuple frames carry their
// stream ID in the SSE id field, so EventSource reconnection resumes
// losslessly via Last-Event-ID.
func (g *Gateway) serveSSE(w http.ResponseWriter, r *http.Request, principal, metric string, afterID uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, apiv1.Errorf(apiv1.CodeInternal, false, "response writer cannot stream"))
		return
	}
	sub, err := g.Attach(r.Context(), principal, metric, afterID)
	if err != nil {
		writeError(w, apiError(err))
		return
	}
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		f, more := sub.Next(r.Context())
		if f.Type != "" {
			if err := writeSSEFrame(w, f); err != nil {
				return
			}
			fl.Flush()
		}
		if !more {
			return
		}
	}
}

func writeSSEFrame(w http.ResponseWriter, f apiv1.Frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if f.Type == apiv1.FrameTuple && f.Tuple != nil {
		if _, err := fmt.Fprintf(w, "id: %d\n", f.Tuple.StreamID); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "data: %s\n\n", b)
	return err
}
