package gateway

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestTokenBucketRefill drives the limiter on a virtual clock: no wall
// sleeps, fully deterministic refill.
func TestTokenBucketRefill(t *testing.T) {
	clk := sim.NewVirtual(time.Unix(0, 0))
	l := newLimiter(clk, 1, 2) // 1 token/s, burst 2

	if _, ok := l.allow("alice"); !ok {
		t.Fatal("first request should pass (full bucket)")
	}
	if _, ok := l.allow("alice"); !ok {
		t.Fatal("second request should pass (burst)")
	}
	wait, ok := l.allow("alice")
	if ok {
		t.Fatal("third request should be limited")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s]", wait)
	}

	// Principals are independent buckets.
	if _, ok := l.allow("bob"); !ok {
		t.Fatal("bob has his own bucket")
	}

	// Half a token is not a token.
	clk.Advance(500 * time.Millisecond)
	if _, ok := l.allow("alice"); ok {
		t.Fatal("bucket refilled too fast")
	}
	// A full second accrues one token (the failed probe above must not
	// have spent anything).
	clk.Advance(500 * time.Millisecond)
	if _, ok := l.allow("alice"); !ok {
		t.Fatal("bucket should hold one token after 1s")
	}
	if _, ok := l.allow("alice"); ok {
		t.Fatal("token already spent")
	}

	// Refill caps at burst.
	clk.Advance(time.Hour)
	for i := 0; i < 2; i++ {
		if _, ok := l.allow("alice"); !ok {
			t.Fatalf("request %d should pass after refill to burst", i)
		}
	}
	if _, ok := l.allow("alice"); ok {
		t.Fatal("burst cap exceeded")
	}

	if got := l.principals(); got != 2 {
		t.Fatalf("principals = %d, want 2", got)
	}
}

// TestRateDisabled checks a negative rate turns limiting off.
func TestRateDisabled(t *testing.T) {
	l := newLimiter(sim.NewVirtual(time.Unix(0, 0)), -1, 1)
	for i := 0; i < 100; i++ {
		if _, ok := l.allow("p"); !ok {
			t.Fatal("disabled limiter must always allow")
		}
	}
}
