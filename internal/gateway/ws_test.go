package gateway

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	apiv1 "repro/api/v1"
	"repro/internal/stream"
)

// wsDial runs the client side of the RFC 6455 handshake over raw TCP and
// returns the open connection.
func wsDial(t *testing.T, addr, path string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	const key = "dGhlIHNhbXBsZSBub25jZQ==" // RFC 6455 §1.3 example key
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: gateway\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		t.Fatalf("handshake status %d, want 101", resp.StatusCode)
	}
	// The accept key for the RFC's sample nonce is the RFC's sample accept.
	if got := resp.Header.Get("Sec-WebSocket-Accept"); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("Sec-WebSocket-Accept = %q", got)
	}
	return conn, br
}

// wsClientWrite sends one masked client frame (clients MUST mask).
func wsClientWrite(t *testing.T, conn net.Conn, opcode byte, payload []byte) {
	t.Helper()
	if len(payload) >= 126 {
		t.Fatalf("test client only writes short frames, got %d bytes", len(payload))
	}
	mask := [4]byte{0x1a, 0x2b, 0x3c, 0x4d}
	frame := make([]byte, 0, 6+len(payload))
	frame = append(frame, 0x80|opcode, 0x80|byte(len(payload)))
	frame = append(frame, mask[:]...)
	for i, b := range payload {
		frame = append(frame, b^mask[i%4])
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
}

// wsClientRead reads one unmasked server frame.
func wsClientRead(t *testing.T, br *bufio.Reader) (opcode byte, payload []byte) {
	t.Helper()
	var h [2]byte
	if _, err := readFull(br, h[:]); err != nil {
		t.Fatal(err)
	}
	opcode = h[0] & 0x0F
	length := uint64(h[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err := readFull(br, ext[:]); err != nil {
			t.Fatal(err)
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err := readFull(br, ext[:]); err != nil {
			t.Fatal(err)
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	payload = make([]byte, length)
	if _, err := readFull(br, payload); err != nil {
		t.Fatal(err)
	}
	return opcode, payload
}

func readFull(br *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := br.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func newServedFixture(t *testing.T, cfg Config) (*fixture, string) {
	t.Helper()
	b := stream.NewBroker(0)
	backend := NewBusBackend(b, 0)
	gw := New(backend, cfg)
	addr, err := gw.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		gw.Close()
		b.Close()
	})
	return &fixture{broker: b, backend: backend, gw: gw}, addr
}

func TestWebSocketSubscribe(t *testing.T) {
	f, addr := newServedFixture(t, Config{})
	f.publish(t, "m.cap", 3)

	conn, br := wsDial(t, addr, apiv1.SubscribePath("m.cap"))
	var ids []uint64
	for len(ids) < 3 {
		op, payload := wsClientRead(t, br)
		if op != wsOpText {
			t.Fatalf("opcode %#x, want text", op)
		}
		var fr apiv1.Frame
		if err := json.Unmarshal(payload, &fr); err != nil {
			t.Fatalf("bad frame %q: %v", payload, err)
		}
		if fr.Type != apiv1.FrameTuple {
			t.Fatalf("frame %+v", fr)
		}
		ids = append(ids, fr.Tuple.StreamID)
	}
	if ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("ids %v", ids)
	}
	conn.Close()
}

func TestWebSocketPingPong(t *testing.T) {
	f, addr := newServedFixture(t, Config{})
	f.publish(t, "m.cap", 1)

	conn, br := wsDial(t, addr, apiv1.SubscribePath("m.cap"))
	// Drain the queued tuple so the pong is the next frame we care about.
	if op, _ := wsClientRead(t, br); op != wsOpText {
		t.Fatalf("opcode %#x, want text", op)
	}
	wsClientWrite(t, conn, wsOpPing, []byte("heartbeat"))
	op, payload := wsClientRead(t, br)
	if op != wsOpPong || string(payload) != "heartbeat" {
		t.Fatalf("got opcode %#x payload %q, want pong echo", op, payload)
	}
}

func TestWebSocketCloseOnDrain(t *testing.T) {
	f, addr := newServedFixture(t, Config{})
	f.publish(t, "m.cap", 1)

	_, br := wsDial(t, addr, apiv1.SubscribePath("m.cap"))
	if op, _ := wsClientRead(t, br); op != wsOpText {
		t.Fatalf("opcode %#x, want text", op)
	}
	// Server drain: a goaway frame, then a 1001 close.
	done := make(chan error, 1)
	go func() { done <- f.gw.Shutdown(context.Background()) }()
	op, payload := wsClientRead(t, br)
	if op != wsOpText {
		t.Fatalf("opcode %#x, want goaway text frame", op)
	}
	var fr apiv1.Frame
	if err := json.Unmarshal(payload, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Type != apiv1.FrameGoaway {
		t.Fatalf("frame %+v, want goaway", fr)
	}
	op, payload = wsClientRead(t, br)
	if op != wsOpClose {
		t.Fatalf("opcode %#x, want close", op)
	}
	if status := binary.BigEndian.Uint16(payload[:2]); status != wsStatusGoingAway {
		t.Fatalf("close status %d, want %d", status, wsStatusGoingAway)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestWebSocketRejectsBadHandshake(t *testing.T) {
	f, addr := newServedFixture(t, Config{})
	f.publish(t, "m.cap", 1)

	// Upgrade header without a key: the gateway answers with a plain JSON
	// error instead of hijacking.
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	req := "GET " + apiv1.SubscribePath("m.cap") + " HTTP/1.1\r\n" +
		"Host: gateway\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var e apiv1.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != apiv1.CodeBadRequest {
		t.Fatalf("envelope %+v", e)
	}
}
