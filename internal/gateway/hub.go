package gateway

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	apiv1 "repro/api/v1"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// hub owns every live subscription. Each attached Subscriber gets its own
// upstream bus subscription (an independent pull cursor — a slow edge
// client can never stall the broker's append path) and a bounded send
// queue. The bridge goroutine enqueues frames without ever blocking: a full
// queue means the client fell behind its budget, and the subscriber is
// evicted with a slow_consumer error frame instead of exerting unbounded
// memory pressure or backpressure on the fan-out. That is the backpressure
// contract of the public edge: well-behaved clients see every tuple in
// order; slow ones are cut loose at a known queue depth, and cancelling
// their upstream subscription returns the slack to the bus.
type hub struct {
	backend   Backend
	queueSize int

	mu   sync.Mutex
	subs map[*Subscriber]struct{}

	obsSubscribers *obs.Gauge
	obsAttached    *obs.Counter
	obsEvicted     *obs.Counter
	obsFrames      *obs.Counter
}

func newHub(backend Backend, queueSize int, r *obs.Registry) *hub {
	return &hub{
		backend:        backend,
		queueSize:      queueSize,
		subs:           make(map[*Subscriber]struct{}),
		obsSubscribers: r.Gauge("gateway_subscribers"),
		obsAttached:    r.Counter("gateway_subscriptions_total"),
		obsEvicted:     r.Counter("gateway_evictions_total"),
		obsFrames:      r.Counter("gateway_frames_sent_total"),
	}
}

// Subscriber is one attached live-stream consumer, transport-agnostic: the
// WS and SSE handlers drain it onto their connections, and the load
// scenario drains it directly.
type Subscriber struct {
	principal string
	metric    string

	frames chan apiv1.Frame // bounded send queue
	final  chan apiv1.Frame // capacity 1: eviction or goaway notice
	cancel context.CancelFunc
	hub    *hub

	sent    atomic.Uint64
	evicted atomic.Bool
	once    sync.Once
}

// attach bridges a new subscriber onto the backend.
func (h *hub) attach(ctx context.Context, principal, metric string, afterID uint64) (*Subscriber, error) {
	bctx, cancel := context.WithCancel(ctx)
	// The upstream buffer matches the client queue: total slack per
	// subscriber is bounded and known (queue + upstream buffer).
	ch, err := h.backend.Subscribe(bctx, metric, afterID, h.queueSize)
	if err != nil {
		cancel()
		return nil, err
	}
	s := &Subscriber{
		principal: principal,
		metric:    metric,
		frames:    make(chan apiv1.Frame, h.queueSize),
		final:     make(chan apiv1.Frame, 1),
		cancel:    cancel,
		hub:       h,
	}
	h.mu.Lock()
	h.subs[s] = struct{}{}
	n := len(h.subs)
	h.mu.Unlock()
	h.obsAttached.Inc()
	h.obsSubscribers.Set(float64(n))
	go s.bridge(ch)
	return s, nil
}

func (h *hub) remove(s *Subscriber) {
	h.mu.Lock()
	delete(h.subs, s)
	n := len(h.subs)
	h.mu.Unlock()
	h.obsSubscribers.Set(float64(n))
}

func (h *hub) size() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// drain sends a goaway to every live subscriber and cancels its upstream
// subscription, then waits (bounded by ctx) for the bridges to unwind.
func (h *hub) drain(ctx context.Context) {
	h.mu.Lock()
	subs := make([]*Subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	for _, s := range subs {
		s.goaway()
		s.cancel()
	}
	// Wait (bounded by ctx) for the bridges to unwind so the caller can
	// close the backend without racing in-flight deliveries.
	for h.size() > 0 {
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// bridge pumps upstream entries into the bounded queue. It never blocks on
// a slow consumer: a full queue evicts.
func (s *Subscriber) bridge(ch <-chan stream.Entry) {
	defer s.hub.remove(s)
	defer s.cancel()
	for e := range ch {
		var in telemetry.Info
		if err := in.UnmarshalBinary(e.Payload); err != nil {
			continue // foreign payload on the topic: not part of the contract
		}
		f := apiv1.Frame{Type: apiv1.FrameTuple, Tuple: tupleFromInfo(in, e.ID)}
		select {
		case s.frames <- f:
			s.sent.Add(1)
			s.hub.obsFrames.Inc()
		default:
			s.evict()
			return
		}
	}
	// Upstream ended: handler ctx cancelled, drain, or broker closed.
	s.goaway()
}

// evict marks the subscriber slow and queues its terminal error frame.
func (s *Subscriber) evict() {
	s.once.Do(func() {
		s.evicted.Store(true)
		s.hub.obsEvicted.Inc()
		s.final <- apiv1.Frame{Type: apiv1.FrameError, Error: apiv1.Errorf(
			apiv1.CodeSlowConsumer, true,
			"subscriber for %q overflowed its %d-frame send queue", s.metric, cap(s.frames))}
		s.cancel()
	})
}

// goaway queues the graceful-shutdown terminal frame.
func (s *Subscriber) goaway() {
	s.once.Do(func() {
		s.final <- apiv1.Frame{Type: apiv1.FrameGoaway, Error: apiv1.Errorf(
			apiv1.CodeDraining, true, "subscription closed by server")}
	})
}

// Next returns the next frame to deliver, preferring queued tuples so a
// terminal frame never jumps ahead of data already accepted into the queue.
// The second result is false when the subscription is over: the caller
// writes the returned terminal frame (if any) and closes its transport. A
// false result with an empty frame means ctx ended first.
func (s *Subscriber) Next(ctx context.Context) (apiv1.Frame, bool) {
	select {
	case f := <-s.frames:
		return f, true
	default:
	}
	select {
	case f := <-s.frames:
		return f, true
	case f := <-s.final:
		return f, false
	case <-ctx.Done():
		return apiv1.Frame{}, false
	}
}

// Frames exposes the bounded send queue (load-scenario fast path).
func (s *Subscriber) Frames() <-chan apiv1.Frame { return s.frames }

// Final exposes the terminal-frame channel (load-scenario fast path).
func (s *Subscriber) Final() <-chan apiv1.Frame { return s.final }

// Evicted reports whether the subscriber was cut loose as a slow consumer.
func (s *Subscriber) Evicted() bool { return s.evicted.Load() }

// Sent reports how many tuple frames were accepted into the send queue.
func (s *Subscriber) Sent() uint64 { return s.sent.Load() }

// Principal returns the authenticated principal that attached this
// subscriber.
func (s *Subscriber) Principal() string { return s.principal }

// Close detaches the subscriber (client went away).
func (s *Subscriber) Close() {
	s.cancel()
}
