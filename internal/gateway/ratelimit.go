package gateway

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// limiter rate-limits requests per principal with lazy token buckets: each
// bucket holds up to burst tokens, refilling at rate tokens/second of clock
// time. Refill is computed on demand from elapsed clock time — no background
// goroutine — so under a *sim.Virtual clock the refill schedule is exactly
// as deterministic as the test that advances it.
type limiter struct {
	clock sim.Clock
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(clock sim.Clock, rate float64, burst int) *limiter {
	return &limiter{
		clock:   clock,
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from principal's bucket. When the bucket is empty
// it reports false plus how long until the next token accrues (the
// Retry-After hint). A non-positive rate disables limiting entirely.
func (l *limiter) allow(principal string) (wait time.Duration, ok bool) {
	if l.rate <= 0 {
		return 0, true
	}
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, found := l.buckets[principal]
	if !found {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[principal] = b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := 1 - b.tokens
	return time.Duration(need / l.rate * float64(time.Second)), false
}

// principals reports how many distinct principals hold buckets.
func (l *limiter) principals() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
