package gateway

import (
	"net/http"
	"strings"
)

// AnonymousPrincipal is the principal every request runs as when the
// gateway has no token table (auth disabled).
const AnonymousPrincipal = "anonymous"

// authenticator resolves static bearer tokens to principal names. The token
// table is immutable after construction, so lookups are lock-free.
type authenticator struct {
	tokens map[string]string // token -> principal
}

func newAuthenticator(tokens map[string]string) *authenticator {
	cp := make(map[string]string, len(tokens))
	for t, p := range tokens {
		cp[t] = p
	}
	return &authenticator{tokens: cp}
}

// principal authenticates r, returning the principal name. Tokens arrive as
// "Authorization: Bearer <token>" or — for WebSocket clients that cannot
// set headers (browsers) — as an access_token query parameter, mirroring
// RFC 6750 §2.3.
func (a *authenticator) principal(r *http.Request) (string, bool) {
	if len(a.tokens) == 0 {
		return AnonymousPrincipal, true
	}
	token := ""
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			token = rest
		}
	}
	if token == "" {
		token = r.URL.Query().Get("access_token")
	}
	if token == "" {
		return "", false
	}
	p, ok := a.tokens[token]
	return p, ok
}
