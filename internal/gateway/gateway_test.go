package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	apiv1 "repro/api/v1"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// fixture is a gateway over an in-process broker with a few published
// tuples.
type fixture struct {
	broker  *stream.Broker
	backend *BusBackend
	gw      *Gateway
	srv     *httptest.Server
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	b := stream.NewBroker(0)
	backend := NewBusBackend(b, 0)
	gw := New(backend, cfg)
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		srv.Close()
		gw.Close()
		b.Close()
	})
	return &fixture{broker: b, backend: backend, gw: gw, srv: srv}
}

func (f *fixture) publish(t *testing.T, metric string, n int) {
	t.Helper()
	base := time.Unix(1700000000, 0).UnixNano()
	for i := 0; i < n; i++ {
		in := telemetry.NewFact(telemetry.MetricID(metric), base+int64(i)*int64(time.Second), float64(i))
		p, err := in.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.broker.Publish(context.Background(), metric, p); err != nil {
			t.Fatal(err)
		}
	}
}

func (f *fixture) do(t *testing.T, method, path, token, body string) (*http.Response, []byte) {
	t.Helper()
	var req *http.Request
	var err error
	if body != "" {
		req, err = http.NewRequest(method, f.srv.URL+path, strings.NewReader(body))
	} else {
		req, err = http.NewRequest(method, f.srv.URL+path, nil)
	}
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		buf.WriteString(sc.Text())
		buf.WriteString("\n")
	}
	return resp, []byte(buf.String())
}

func decodeErr(t *testing.T, body []byte) *apiv1.Error {
	t.Helper()
	var e apiv1.Error
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("not an error envelope: %v (%s)", err, body)
	}
	return &e
}

func TestAuth(t *testing.T) {
	f := newFixture(t, Config{Tokens: map[string]string{"s3cret": "alice"}})
	f.publish(t, "m.cap", 3)

	// No token: 401 with the contract envelope.
	resp, body := f.do(t, "GET", apiv1.PathTopics, "", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status %d, want 401", resp.StatusCode)
	}
	if e := decodeErr(t, body); e.Code != apiv1.CodeUnauthorized || e.Retryable {
		t.Fatalf("envelope %+v", e)
	}

	// Wrong token: same.
	resp, _ = f.do(t, "GET", apiv1.PathTopics, "nope", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status %d, want 401", resp.StatusCode)
	}

	// Good token.
	resp, body = f.do(t, "GET", apiv1.PathTopics, "s3cret", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (%s)", resp.StatusCode, body)
	}
	var topics apiv1.TopicsResponse
	if err := json.Unmarshal(body, &topics); err != nil {
		t.Fatal(err)
	}
	if len(topics.Topics) != 1 || topics.Topics[0] != "m.cap" {
		t.Fatalf("topics %+v", topics)
	}

	// Probes stay open.
	resp, _ = f.do(t, "GET", apiv1.PathHealthz, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200", resp.StatusCode)
	}
}

func TestQueryEndpoint(t *testing.T) {
	f := newFixture(t, Config{})
	f.publish(t, "m.cap", 10)

	resp, body := f.do(t, "POST", apiv1.PathQuery, "", `{"query":"SELECT MAX(Value) FROM m.cap"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr apiv1.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	// 9.0 rides the wire as the native scalar 9.
	if len(qr.Rows) != 1 || qr.Rows[0][0].String() != "9" {
		t.Fatalf("rows %+v", qr.Rows)
	}

	// Repeat query from "another principal" hits the shared plan cache.
	f.do(t, "POST", apiv1.PathQuery, "", `{"query":"SELECT MAX(Value) FROM m.cap"}`)
	hits, _, _ := f.backend.Engine().PlanCacheStats()
	if hits < 1 {
		t.Fatalf("expected shared plan-cache hit, got %d", hits)
	}

	// Bad SQL is a bad_request, not an internal error.
	resp, body = f.do(t, "POST", apiv1.PathQuery, "", `{"query":"SELEC nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != apiv1.CodeBadRequest {
		t.Fatalf("envelope %+v", e)
	}

	// Unknown wire fields are rejected: the contract is closed.
	resp, _ = f.do(t, "POST", apiv1.PathQuery, "", `{"query":"SELECT MAX(Value) FROM m.cap","warp":9}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: status %d", resp.StatusCode)
	}
}

func TestLatestEndpoint(t *testing.T) {
	f := newFixture(t, Config{})
	f.publish(t, "m.cap", 5)

	resp, body := f.do(t, "GET", apiv1.LatestPath("m.cap"), "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var tu apiv1.Tuple
	if err := json.Unmarshal(body, &tu); err != nil {
		t.Fatal(err)
	}
	if tu.Metric != "m.cap" || tu.Value != 4 || tu.Kind != "fact" || tu.Source != "measured" {
		t.Fatalf("tuple %+v", tu)
	}

	resp, body = f.do(t, "GET", apiv1.LatestPath("missing.metric"), "", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if e := decodeErr(t, body); e.Code != apiv1.CodeNoSuchMetric {
		t.Fatalf("envelope %+v", e)
	}
}

func TestRateLimitEndpoint(t *testing.T) {
	clk := sim.NewVirtual(time.Unix(0, 0))
	f := newFixture(t, Config{Rate: 1, Burst: 2, Clock: clk, Obs: obs.NewRegistry()})
	f.publish(t, "m.cap", 1)

	for i := 0; i < 2; i++ {
		resp, body := f.do(t, "GET", apiv1.PathTopics, "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, body := f.do(t, "GET", apiv1.PathTopics, "", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("missing Retry-After")
	}
	if e := decodeErr(t, body); e.Code != apiv1.CodeRateLimited || !e.Retryable {
		t.Fatalf("envelope %+v", e)
	}

	// Virtual time refills the bucket deterministically.
	clk.Advance(time.Second)
	resp, _ = f.do(t, "GET", apiv1.PathTopics, "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after refill: status %d", resp.StatusCode)
	}
}

func TestSSESubscribe(t *testing.T) {
	f := newFixture(t, Config{})
	f.publish(t, "m.cap", 3)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", f.srv.URL+apiv1.SubscribePath("m.cap"), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var ids []uint64
	var values []float64
	for sc.Scan() && len(values) < 3 {
		line := sc.Text()
		if id, ok := strings.CutPrefix(line, "id: "); ok {
			var v uint64
			fmt.Sscanf(id, "%d", &v)
			ids = append(ids, v)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var fr apiv1.Frame
			if err := json.Unmarshal([]byte(data), &fr); err != nil {
				t.Fatalf("bad frame %q: %v", data, err)
			}
			if fr.Type != apiv1.FrameTuple {
				t.Fatalf("unexpected frame %+v", fr)
			}
			values = append(values, fr.Tuple.Value)
		}
	}
	if len(values) != 3 || values[0] != 0 || values[2] != 2 {
		t.Fatalf("values %v", values)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[2] != 3 {
		t.Fatalf("ids %v", ids)
	}
	cancel()
}

func TestSSEResume(t *testing.T) {
	f := newFixture(t, Config{})
	f.publish(t, "m.cap", 5)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// Resume after stream ID 3: only tuples 4 and 5 arrive.
	req, _ := http.NewRequestWithContext(ctx, "GET", f.srv.URL+apiv1.SubscribePath("m.cap")+"?after=3", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var got []uint64
	for sc.Scan() && len(got) < 2 {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			var fr apiv1.Frame
			if err := json.Unmarshal([]byte(data), &fr); err != nil {
				t.Fatal(err)
			}
			got = append(got, fr.Tuple.StreamID)
		}
	}
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("resumed ids %v, want [4 5]", got)
	}
}

// TestSlowConsumerEviction attaches a subscriber that never drains and
// floods the topic: the bounded queue overflows, the subscriber is evicted
// with a slow_consumer frame, and the publisher is never blocked.
func TestSlowConsumerEviction(t *testing.T) {
	reg := obs.NewRegistry()
	f := newFixture(t, Config{QueueSize: 4, Obs: reg})

	sub, err := f.gw.Attach(context.Background(), "slow", "m.cap", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Queue (4) + upstream buffer (4) + in-flight slack: 64 entries is far
	// past any bound.
	f.publish(t, "m.cap", 64)

	select {
	case fr := <-sub.Final():
		if fr.Type != apiv1.FrameError || fr.Error.Code != apiv1.CodeSlowConsumer || !fr.Error.Retryable {
			t.Fatalf("terminal frame %+v", fr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no eviction within 5s")
	}
	if !sub.Evicted() {
		t.Fatal("Evicted() false after eviction")
	}
	// The hub forgets the subscriber.
	deadline := time.Now().Add(5 * time.Second)
	for f.gw.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber still attached: %d", f.gw.Subscribers())
		}
		time.Sleep(time.Millisecond)
	}
	if n := reg.Snapshot().Counter("gateway_evictions_total"); n != 1 {
		t.Fatalf("gateway_evictions_total = %d, want 1", n)
	}
}

// TestWellBehavedSubscriberLosesNothing drains promptly and must see every
// tuple exactly once, in stream order. Publishing rides a batch barrier —
// each batch fits the send queue and is fully drained before the next one —
// so the zero-loss invariant does not depend on goroutine scheduling.
func TestWellBehavedSubscriberLosesNothing(t *testing.T) {
	const queue, batches = 8, 64
	f := newFixture(t, Config{QueueSize: queue})
	sub, err := f.gw.Attach(context.Background(), "good", "m.cap", 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var ids []uint64
	for b := 0; b < batches; b++ {
		f.publish(t, "m.cap", queue)
		for i := 0; i < queue; i++ {
			fr, more := sub.Next(ctx)
			if !more || fr.Type != apiv1.FrameTuple {
				t.Fatalf("batch %d frame %d: %+v more=%v", b, i, fr, more)
			}
			ids = append(ids, fr.Tuple.StreamID)
		}
	}
	if len(ids) != queue*batches {
		t.Fatalf("received %d tuples, want %d", len(ids), queue*batches)
	}
	for i, id := range ids {
		if id != uint64(i+1) {
			t.Fatalf("ids[%d] = %d: not contiguous in order", i, id)
		}
	}
	if sub.Evicted() {
		t.Fatal("well-behaved subscriber evicted")
	}
	sub.Close()
}

// TestGracefulDrain: readiness flips, subscribers get goaway, new work is
// refused.
func TestGracefulDrain(t *testing.T) {
	f := newFixture(t, Config{})
	f.publish(t, "m.cap", 1)

	sub, err := f.gw.Attach(context.Background(), "p", "m.cap", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the one queued tuple so the goaway is next.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if fr, more := sub.Next(ctx); !more || fr.Type != apiv1.FrameTuple {
		t.Fatalf("first frame %+v more=%v", fr, more)
	}

	if err := f.gw.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	fr, more := sub.Next(ctx)
	if more || fr.Type != apiv1.FrameGoaway {
		t.Fatalf("expected goaway, got %+v more=%v", fr, more)
	}

	resp, _ := f.do(t, "GET", apiv1.PathReadyz, "", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	resp, body := f.do(t, "GET", apiv1.PathTopics, "", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: %d, want 503", resp.StatusCode)
	}
	if e := decodeErr(t, body); e.Code != apiv1.CodeDraining {
		t.Fatalf("envelope %+v", e)
	}
	if _, err := f.gw.Attach(context.Background(), "p", "m.cap", 0); err == nil {
		t.Fatal("attach during drain should fail")
	}
}

func TestRetentionUnavailableOverBus(t *testing.T) {
	f := newFixture(t, Config{})
	resp, body := f.do(t, "GET", apiv1.PathRetention, "", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != apiv1.CodeUnavailable {
		t.Fatalf("envelope %+v", e)
	}
}
