// Package gateway is Apollo's public edge: an HTTP/JSON front door over the
// internal binary fabric, serving the versioned api/v1 contract. It exposes
// AQE queries (riding the shared prepared-plan cache), latest-value and
// topic-listing reads, archive retention stats, and live subscriptions over
// WebSocket and Server-Sent Events bridged onto the stream fabric with
// bounded per-client send queues and slow-consumer eviction. Static bearer
// tokens authenticate principals; a per-principal token bucket rate-limits
// requests; health/readiness endpoints and graceful drain make it a
// well-behaved fleet citizen (DESIGN.md §4j).
//
// The package knows the backend only through the Backend interface:
// core.Service implements it in-process (apollod -gateway-addr) and
// BusBackend implements it over a dialed stream.Client (cmd/apollo-gateway),
// so the edge runs embedded or as its own tier.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	apiv1 "repro/api/v1"
	"repro/internal/aqe"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// ErrUnavailable marks a Backend capability the deployment cannot serve
// (e.g. retention stats on a gateway with no local archive); the gateway
// maps it to api/v1 code "unavailable".
var ErrUnavailable = errors.New("gateway: capability unavailable on this backend")

// Backend is everything the gateway needs from the system it fronts.
type Backend interface {
	// Query executes AQE SQL through the backend's shared prepared-plan
	// cache.
	Query(sql string) (*aqe.Result, error)
	// Latest returns the newest tuple of metric.
	Latest(metric string) (telemetry.Info, bool)
	// Topics lists the metric streams the backend serves.
	Topics(ctx context.Context) ([]string, error)
	// Subscribe streams raw entries of metric with ID > afterID until ctx
	// ends. The buffer is the bridge's upstream slack (see
	// stream.BufferedSubscriber).
	Subscribe(ctx context.Context, metric string, afterID uint64, buffer int) (<-chan stream.Entry, error)
	// Degraded reports backend health for the health endpoint.
	Degraded() bool
	// Retention reports per-metric archive tier stats, or ErrUnavailable.
	Retention() ([]apiv1.RetentionMetric, error)
}

// Defaults for Config's zero values.
const (
	// DefaultRate is the per-principal request budget, tokens per second.
	DefaultRate = 100
	// DefaultBurst is the token-bucket capacity.
	DefaultBurst = 200
	// DefaultQueueSize bounds each subscriber's send queue, in frames.
	DefaultQueueSize = 256
	// DefaultDrainTimeout bounds graceful shutdown.
	DefaultDrainTimeout = 5 * time.Second
)

// Config parameterizes a Gateway.
type Config struct {
	// Tokens maps static bearer tokens to principal names. Empty leaves the
	// gateway open: every request runs as principal "anonymous" (fine on a
	// loopback dev box, not on a real edge).
	Tokens map[string]string
	// Rate is each principal's sustained request budget in requests/second
	// (0: DefaultRate; negative disables rate limiting).
	Rate float64
	// Burst is the token-bucket capacity (0: DefaultBurst).
	Burst int
	// QueueSize bounds each subscriber's frame send queue; overflowing it
	// evicts the subscriber (0: DefaultQueueSize).
	QueueSize int
	// DrainTimeout bounds Shutdown's graceful phase (0:
	// DefaultDrainTimeout).
	DrainTimeout time.Duration
	// Clock drives rate-limit refill and drain pacing; nil means wall time.
	// Inject a *sim.Virtual to test refill deterministically.
	Clock sim.Clock
	// Obs instruments the gateway (nil: no instrumentation).
	Obs *obs.Registry
}

// Gateway serves the api/v1 contract over a Backend.
type Gateway struct {
	backend Backend
	cfg     Config
	clock   sim.Clock
	auth    *authenticator
	limits  *limiter
	hub     *hub
	mux     *http.ServeMux

	mu       sync.Mutex
	server   *http.Server
	listener net.Listener
	draining bool

	// Per-route obs latency histograms plus edge counters.
	obsQuerySec     *obs.Histogram
	obsLatestSec    *obs.Histogram
	obsTopicsSec    *obs.Histogram
	obsRetentionSec *obs.Histogram
	obsRequests     *obs.Counter
	obsUnauthorized *obs.Counter
	obsRateLimited  *obs.Counter
}

// New builds a Gateway over backend.
func New(backend Backend, cfg Config) *Gateway {
	clock := sim.Or(cfg.Clock)
	if cfg.Rate == 0 {
		cfg.Rate = DefaultRate
	}
	if cfg.Burst <= 0 {
		cfg.Burst = DefaultBurst
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	g := &Gateway{
		backend: backend,
		cfg:     cfg,
		clock:   clock,
		auth:    newAuthenticator(cfg.Tokens),
		limits:  newLimiter(clock, cfg.Rate, cfg.Burst),
		hub:     newHub(backend, cfg.QueueSize, cfg.Obs),
	}
	r := cfg.Obs
	g.obsQuerySec = r.Histogram("gateway_query_seconds", obs.DefLatencyBuckets...)
	g.obsLatestSec = r.Histogram("gateway_latest_seconds", obs.DefLatencyBuckets...)
	g.obsTopicsSec = r.Histogram("gateway_topics_seconds", obs.DefLatencyBuckets...)
	g.obsRetentionSec = r.Histogram("gateway_retention_seconds", obs.DefLatencyBuckets...)
	g.obsRequests = r.Counter("gateway_requests_total")
	g.obsUnauthorized = r.Counter("gateway_unauthorized_total")
	g.obsRateLimited = r.Counter("gateway_rate_limited_total")
	g.mux = g.routes()
	return g
}

// routes builds the api/v1 mux. Probes are unauthenticated; everything else
// passes auth + rate limiting.
func (g *Gateway) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+apiv1.PathHealthz, g.handleHealthz)
	mux.HandleFunc("GET "+apiv1.PathReadyz, g.handleReadyz)
	mux.Handle("POST "+apiv1.PathQuery, g.guard(g.obsQuerySec, g.handleQuery))
	mux.Handle("GET "+apiv1.PathTopics, g.guard(g.obsTopicsSec, g.handleTopics))
	mux.Handle("GET "+apiv1.PathLatest, g.guard(g.obsLatestSec, g.handleLatest))
	mux.Handle("GET "+apiv1.PathRetention, g.guard(g.obsRetentionSec, g.handleRetention))
	mux.Handle("GET "+apiv1.PathSubscribe, g.guard(nil, g.handleSubscribe))
	return mux
}

// Handler returns the gateway's HTTP handler (for tests and embedding).
func (g *Gateway) Handler() http.Handler { return g.mux }

// guard wraps h with authentication, rate limiting, and (when hist is
// non-nil) a per-route latency observation. The resolved principal rides the
// request context.
func (g *Gateway) guard(hist *obs.Histogram, h func(http.ResponseWriter, *http.Request, string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.obsRequests.Inc()
		principal, ok := g.auth.principal(r)
		if !ok {
			g.obsUnauthorized.Inc()
			writeError(w, apiv1.Errorf(apiv1.CodeUnauthorized, false, "missing or unknown bearer token"))
			return
		}
		if g.isDraining() {
			writeError(w, apiv1.Errorf(apiv1.CodeDraining, true, "gateway draining"))
			return
		}
		if wait, ok := g.limits.allow(principal); !ok {
			g.obsRateLimited.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(wait/time.Second)+1))
			writeError(w, apiv1.Errorf(apiv1.CodeRateLimited, true, "principal %q over budget", principal))
			return
		}
		if hist != nil {
			start := time.Now()
			defer func() { hist.ObserveDuration(time.Since(start)) }()
		}
		h(w, r, principal)
	})
}

// Serve listens on addr and serves until Shutdown/Close; it returns the
// bound address ("host:0" picks a port).
func (g *Gateway) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("gateway: %w", err)
	}
	srv := &http.Server{Handler: g.mux}
	g.mu.Lock()
	g.server = srv
	g.listener = ln
	g.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

func (g *Gateway) isDraining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Shutdown drains the gateway gracefully: readiness flips to 503, every
// live subscription receives a goaway frame and is closed, and in-flight
// HTTP requests get up to Config.DrainTimeout (bounded further by ctx) to
// finish. Safe to call more than once.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	srv := g.server
	g.mu.Unlock()
	dctx, cancel := context.WithTimeout(ctx, g.cfg.DrainTimeout)
	defer cancel()
	g.hub.drain(dctx)
	if srv != nil {
		return srv.Shutdown(dctx)
	}
	return nil
}

// Close tears the gateway down immediately (tests, error paths).
func (g *Gateway) Close() {
	g.mu.Lock()
	srv := g.server
	g.mu.Unlock()
	g.hub.drain(context.Background())
	if srv != nil {
		srv.Close()
	}
}

// Subscribers reports the number of live subscriptions.
func (g *Gateway) Subscribers() int { return g.hub.size() }

// Attach bridges one subscriber onto the backend without a transport —
// the entry point the WS/SSE handlers, the deterministic load scenario, and
// tests share. See hub.attach.
func (g *Gateway) Attach(ctx context.Context, principal, metric string, afterID uint64) (*Subscriber, error) {
	if g.isDraining() {
		return nil, apiv1.Errorf(apiv1.CodeDraining, true, "gateway draining")
	}
	return g.hub.attach(ctx, principal, metric, afterID)
}

// tupleFromInfo renders an internal tuple on the public contract.
func tupleFromInfo(in telemetry.Info, streamID uint64) *apiv1.Tuple {
	return &apiv1.Tuple{
		Metric:      string(in.Metric),
		TimestampNS: in.Timestamp,
		Value:       in.Value,
		Kind:        in.Kind.String(),
		Source:      in.Source.String(),
		StreamID:    streamID,
	}
}
