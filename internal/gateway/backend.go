package gateway

import (
	"context"

	apiv1 "repro/api/v1"
	"repro/internal/aqe"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// BusBackend serves the gateway from any stream.Bus — a dialed
// stream.Client in the standalone cmd/apollo-gateway tier, or an in-process
// Broker in tests and the load scenario. Queries run through a private AQE
// engine over aqe.BusResolver with its own shared prepared-plan cache;
// retention stats are unavailable (the archive lives with the service).
type BusBackend struct {
	bus    stream.Bus
	engine *aqe.Engine
}

// NewBusBackend builds a backend over bus. planCache sets the prepared-plan
// LRU capacity (0: aqe.DefaultPlanCacheSize; negative disables).
func NewBusBackend(bus stream.Bus, planCache int) *BusBackend {
	return &BusBackend{
		bus:    bus,
		engine: aqe.NewEngine(aqe.BusResolver{Bus: bus}, aqe.WithPlanCache(planCache)),
	}
}

// Engine exposes the backend's query engine (plan-cache stats,
// instrumentation).
func (b *BusBackend) Engine() *aqe.Engine { return b.engine }

// Query implements Backend.
func (b *BusBackend) Query(sql string) (*aqe.Result, error) { return b.engine.Query(sql) }

// Latest implements Backend.
func (b *BusBackend) Latest(metric string) (telemetry.Info, bool) {
	e, err := b.bus.Latest(context.Background(), metric)
	if err != nil {
		return telemetry.Info{}, false
	}
	var in telemetry.Info
	if err := in.UnmarshalBinary(e.Payload); err != nil {
		return telemetry.Info{}, false
	}
	return in, true
}

// Topics implements Backend over either transport's listing surface.
func (b *BusBackend) Topics(ctx context.Context) ([]string, error) {
	switch t := b.bus.(type) {
	case interface {
		Topics(ctx context.Context) ([]string, error)
	}:
		return t.Topics(ctx)
	case interface{ Topics() []string }:
		return t.Topics(), nil
	default:
		return nil, ErrUnavailable
	}
}

// Subscribe implements Backend, using the buffered fan-out hook when the
// bus offers it.
func (b *BusBackend) Subscribe(ctx context.Context, metric string, afterID uint64, buffer int) (<-chan stream.Entry, error) {
	if bs, ok := b.bus.(stream.BufferedSubscriber); ok {
		return bs.SubscribeBuffered(ctx, metric, afterID, buffer)
	}
	return b.bus.Subscribe(ctx, metric, afterID)
}

// Degraded implements Backend; a bare bus carries no vertex health.
func (b *BusBackend) Degraded() bool { return false }

// Retention implements Backend.
func (b *BusBackend) Retention() ([]apiv1.RetentionMetric, error) { return nil, ErrUnavailable }

var _ Backend = (*BusBackend)(nil)
