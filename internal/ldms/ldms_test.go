package ldms

import (
	"testing"
	"time"

	"repro/internal/aqe"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/telemetry"
)

func TestStoreInsertLatest(t *testing.T) {
	s := NewStore()
	if _, ok := s.Latest("t"); ok {
		t.Fatal("latest on empty table")
	}
	s.Insert("t", 1, 10)
	s.Insert("t", 3, 30)
	s.Insert("t", 2, 20)
	got, ok := s.Latest("t")
	if !ok || got.Timestamp != 3 || got.Value != 30 {
		t.Fatalf("latest=%v ok=%v", got, ok)
	}
	if s.Rows("t") != 3 || s.Tables() != 1 {
		t.Fatalf("rows=%d tables=%d", s.Rows("t"), s.Tables())
	}
}

func TestStoreRange(t *testing.T) {
	s := NewStore()
	for i := 0; i < 10; i++ {
		s.Insert("t", int64(i*10), float64(i))
	}
	got := s.Range("t", 25, 55)
	if len(got) != 3 || got[0].Timestamp != 30 || got[2].Timestamp != 50 {
		t.Fatalf("range=%v", got)
	}
}

func TestSamplerFixedInterval(t *testing.T) {
	svc := NewService()
	clock := sched.NewSimClock(time.Unix(0, 0))
	hook := score.HookFunc{ID: "m", Fn: func() (float64, error) { return 5, nil }}
	sm := svc.AddSampler(hook, time.Second, clock)
	for i := 0; i < 4; i++ {
		sm.PollOnce()
		clock.Advance(time.Second)
	}
	if sm.Polls() != 4 || svc.Polls() != 4 {
		t.Fatalf("polls=%d", sm.Polls())
	}
	// LDMS stores every sample — no change filter.
	if svc.Store.Rows("m") != 4 {
		t.Fatalf("rows=%d", svc.Store.Rows("m"))
	}
}

func TestServiceStartStop(t *testing.T) {
	svc := NewService()
	hook := score.HookFunc{ID: "m", Fn: func() (float64, error) { return 1, nil }}
	svc.AddSampler(hook, time.Millisecond, nil)
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && svc.Store.Rows("m") < 3 {
		time.Sleep(time.Millisecond)
	}
	svc.Stop()
	svc.Stop() // idempotent
	if svc.Store.Rows("m") < 3 {
		t.Fatalf("rows=%d", svc.Store.Rows("m"))
	}
}

func TestExecutorAdapters(t *testing.T) {
	s := NewStore()
	s.Insert("cap", 10, 100)
	s.Insert("cap", 20, 90)
	ex := Executor{Store: s, Table: "cap"}
	if ex.Metric() != telemetry.MetricID("cap") {
		t.Fatal("metric wrong")
	}
	latest, ok := ex.Latest()
	if !ok || latest.Timestamp != 20 || latest.Value != 90 {
		t.Fatalf("latest=%v", latest)
	}
	rng := ex.Range(5, 15)
	if len(rng) != 1 || rng[0].Value != 100 {
		t.Fatalf("range=%v", rng)
	}
	empty := Executor{Store: s, Table: "ghost"}
	if _, ok := empty.Latest(); ok {
		t.Fatal("ghost latest ok")
	}
}

func TestAQEOverLDMS(t *testing.T) {
	// The identical resource query of Fig. 12 runs against the LDMS store.
	s := NewStore()
	s.Insert("pfs_capacity", 100, 500)
	s.Insert("node_1_memory", 100, 64)
	eng := aqe.NewEngine(Resolver{Store: s})
	res, err := eng.Query("SELECT MAX(Timestamp), metric FROM pfs_capacity UNION SELECT MAX(Timestamp), metric FROM node_1_memory")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].F != 500 || res.Rows[1][1].F != 64 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if _, err := eng.Query("SELECT metric FROM ghost"); err == nil {
		t.Fatal("ghost table resolved")
	}
}

func TestScanPenaltySlowsQueries(t *testing.T) {
	fast, slow := NewStore(), NewStore()
	slow.ScanPenalty = 200 * time.Nanosecond
	for i := 0; i < 5000; i++ {
		fast.Insert("t", int64(i), 0)
		slow.Insert("t", int64(i), 0)
	}
	t0 := time.Now()
	fast.Latest("t")
	fastD := time.Since(t0)
	t1 := time.Now()
	slow.Latest("t")
	slowD := time.Since(t1)
	if slowD <= fastD {
		t.Fatalf("penalty had no effect: fast=%v slow=%v", fastD, slowD)
	}
}

func BenchmarkLDMSLatestScan(b *testing.B) {
	s := NewStore()
	for i := 0; i < 10000; i++ {
		s.Insert("t", int64(i), float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Latest("t")
	}
}
