// Package ldms is the comparison baseline of §4.4.1: a simplified
// re-implementation of the Lightweight Distributed Metric Service's
// architecture as the paper characterizes it — fixed-interval samplers on
// every node push metrics to a centralized store (LDMS stores into MySQL or
// flat files), and queries scan that store. The two structural differences
// from Apollo that the evaluation measures are (a) the fixed sampling
// interval and (b) the centralized, scan-on-query storage backend versus
// SCoRe's per-vertex in-memory queues with timestamp indexing.
package ldms

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/score"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Sample is one stored measurement.
type Sample struct {
	Timestamp int64
	Value     float64
}

// Store is the centralized metric store. One global mutex serializes all
// access (the database bottleneck of §2.1), and reads are linear scans —
// there is no per-metric index beyond the table map.
type Store struct {
	mu     sync.Mutex
	tables map[string][]Sample
	// ScanPenalty models per-row query cost of the database backend;
	// zero disables it (pure data-structure comparison).
	ScanPenalty time.Duration
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{tables: make(map[string][]Sample)} }

// Insert appends a sample to a table.
func (s *Store) Insert(table string, ts int64, v float64) {
	s.mu.Lock()
	s.tables[table] = append(s.tables[table], Sample{Timestamp: ts, Value: v})
	s.mu.Unlock()
}

// Rows returns the number of stored samples in a table.
func (s *Store) Rows(table string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tables[table])
}

// Tables returns the number of tables.
func (s *Store) Tables() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.tables)
}

// Latest scans a table for its newest sample.
func (s *Store) Latest(table string) (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rows := s.tables[table]
	if len(rows) == 0 {
		return Sample{}, false
	}
	best := rows[0]
	for _, r := range rows[1:] {
		s.burn()
		if r.Timestamp >= best.Timestamp {
			best = r
		}
	}
	return best, true
}

// Range scans a table for samples in [from, to].
func (s *Store) Range(table string, from, to int64) []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Sample
	for _, r := range s.tables[table] {
		s.burn()
		if r.Timestamp >= from && r.Timestamp <= to {
			out = append(out, r)
		}
	}
	return out
}

// burn spends ScanPenalty of CPU per visited row. Caller holds s.mu, which
// is the point: scans block every sampler trying to insert.
func (s *Store) burn() {
	if s.ScanPenalty <= 0 {
		return
	}
	deadline := time.Now().Add(s.ScanPenalty)
	for time.Now().Before(deadline) {
	}
}

// Sampler polls one hook at a fixed interval and inserts into the store.
type Sampler struct {
	Hook     score.Hook
	Interval time.Duration
	Clock    sim.Clock

	store  *Store
	mu     sync.Mutex
	cancel chan struct{}
	done   chan struct{}
	polls  int
}

// Service is a fleet of samplers over one store — the LDMS deployment of the
// Fig. 12 comparison.
type Service struct {
	Store *Store

	mu       sync.Mutex
	samplers []*Sampler
	running  bool
}

// NewService builds an LDMS-like service.
func NewService() *Service { return &Service{Store: NewStore()} }

// AddSampler registers a fixed-interval sampler for hook.
func (s *Service) AddSampler(hook score.Hook, interval time.Duration, clock sim.Clock) *Sampler {
	sm := &Sampler{Hook: hook, Interval: interval, Clock: sim.Or(clock), store: s.Store}
	s.mu.Lock()
	s.samplers = append(s.samplers, sm)
	s.mu.Unlock()
	return sm
}

// Start launches every sampler.
func (s *Service) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return fmt.Errorf("ldms: already running")
	}
	s.running = true
	for _, sm := range s.samplers {
		sm.start()
	}
	return nil
}

// Stop terminates every sampler.
func (s *Service) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	samplers := append([]*Sampler(nil), s.samplers...)
	s.mu.Unlock()
	for _, sm := range samplers {
		sm.stop()
	}
}

// Polls sums hook invocations across samplers.
func (s *Service) Polls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, sm := range s.samplers {
		total += sm.Polls()
	}
	return total
}

func (sm *Sampler) start() {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	if sm.cancel != nil {
		return
	}
	sm.cancel = make(chan struct{})
	sm.done = make(chan struct{})
	go sm.run(sm.cancel, sm.done)
}

func (sm *Sampler) stop() {
	sm.mu.Lock()
	cancel, done := sm.cancel, sm.done
	sm.cancel, sm.done = nil, nil
	sm.mu.Unlock()
	if cancel == nil {
		return
	}
	close(cancel)
	<-done
}

func (sm *Sampler) run(cancel chan struct{}, done chan struct{}) {
	defer close(done)
	for {
		sm.PollOnce()
		select {
		case <-cancel:
			return
		case <-sm.Clock.After(sm.Interval):
		}
	}
}

// PollOnce samples the hook once (exposed for deterministic tests).
func (sm *Sampler) PollOnce() {
	v, err := sm.Hook.Poll()
	sm.mu.Lock()
	sm.polls++
	sm.mu.Unlock()
	if err != nil {
		return
	}
	sm.store.Insert(string(sm.Hook.Metric()), sm.Clock.Now().UnixNano(), v)
}

// Polls returns the hook invocation count.
func (sm *Sampler) Polls() int {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	return sm.polls
}

// Executor adapts one store table to the score.Executor interface so the
// Apollo Query Engine can run the identical resource query against LDMS
// (every read is a scan under the global lock).
type Executor struct {
	Store *Store
	Table string
}

// Metric implements score.Executor.
func (e Executor) Metric() telemetry.MetricID { return telemetry.MetricID(e.Table) }

// Latest implements score.Executor via full scan.
func (e Executor) Latest() (telemetry.Info, bool) {
	s, ok := e.Store.Latest(e.Table)
	if !ok {
		return telemetry.Info{}, false
	}
	return telemetry.NewFact(telemetry.MetricID(e.Table), s.Timestamp, s.Value), true
}

// Range implements score.Executor via full scan.
func (e Executor) Range(from, to int64) []telemetry.Info {
	rows := e.Store.Range(e.Table, from, to)
	out := make([]telemetry.Info, 0, len(rows))
	for _, r := range rows {
		out = append(out, telemetry.NewFact(telemetry.MetricID(e.Table), r.Timestamp, r.Value))
	}
	return out
}

var _ score.Executor = Executor{}

// Resolver resolves AQE tables against the store.
type Resolver struct {
	Store *Store
}

// Resolve implements aqe.Resolver's contract (returning a score.Executor).
func (r Resolver) Resolve(table string) (score.Executor, error) {
	if r.Store.Rows(table) == 0 && !r.hasTable(table) {
		return nil, fmt.Errorf("ldms: no such table %q", table)
	}
	return Executor{Store: r.Store, Table: table}, nil
}

func (r Resolver) hasTable(table string) bool {
	r.Store.mu.Lock()
	defer r.Store.mu.Unlock()
	_, ok := r.Store.tables[table]
	return ok
}
