package sim

import (
	"testing"
	"time"
)

// TestGenerateFabricDeterministicWithLeaderKill: the fabric generator is a
// pure function of its inputs and actually draws the fifth kind.
func TestGenerateFabricDeterministicWithLeaderKill(t *testing.T) {
	a := GenerateFabric(7, 32, time.Minute)
	b := GenerateFabric(7, 32, time.Minute)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	var kills int
	for _, e := range a.Events {
		if e.Kind == LeaderKill {
			kills++
			if e.Duration != 0 {
				t.Fatalf("leader-kill is a point fault, got duration %v", e.Duration)
			}
		}
	}
	if kills == 0 {
		t.Fatalf("32 fabric events drew no leader-kill:\n%s", a)
	}
}

// TestGenerateUnchangedByFabricKinds: the single-broker generator must keep
// its original four kinds (and rng consumption) so existing seeded
// schedules — and the scenario transcripts derived from them — stay stable.
func TestGenerateUnchangedByFabricKinds(t *testing.T) {
	for _, e := range Generate(7, 64, time.Minute).Events {
		if e.Kind == LeaderKill {
			t.Fatalf("Generate drew LeaderKill: %s", e)
		}
	}
}
