package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// FaultKind classifies one injected fault in a Schedule. The kinds map onto
// the chaos hooks the transport and pipeline layers already expose: conn
// drops and partitions drive the store-and-forward / reconnect paths, broker
// stalls drive backpressure, slow disks drive hook-latency and AIMD
// reaction.
type FaultKind int

const (
	// ConnDrop kills the next publish with a transient transport error
	// (a single mid-stream connection reset).
	ConnDrop FaultKind = iota
	// Partition makes the broker unreachable (every op fails transiently)
	// for the event's Duration.
	Partition
	// BrokerStall makes every broker op succeed but take the event's
	// Duration of (virtual) time — a slow, not dead, fabric.
	BrokerStall
	// SlowDisk makes the monitored resource slow: hook polls spend the
	// event's Duration and report perturbed values, the storage-failure
	// signature the AIMD controller must react to.
	SlowDisk
	// LeaderKill crashes the fabric node currently holding a topic's leader
	// lease; a follower must promote itself (after the lease lapses) and
	// catch up before serving. Only GenerateFabric draws this kind — the
	// single-broker Generate keeps its original four so seeded schedules
	// (and the transcripts derived from them) stay stable.
	LeaderKill
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case ConnDrop:
		return "conn-drop"
	case Partition:
		return "partition"
	case BrokerStall:
		return "broker-stall"
	case SlowDisk:
		return "slow-disk"
	case LeaderKill:
		return "leader-kill"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Event is one timed fault.
type Event struct {
	// At is the virtual-time offset from scenario start.
	At time.Duration
	// Kind is the fault class.
	Kind FaultKind
	// Duration is how long window faults (Partition, BrokerStall, SlowDisk)
	// last; zero for point faults (ConnDrop).
	Duration time.Duration
}

// String renders the event for transcripts: "+1m30s partition 10s".
func (e Event) String() string {
	if e.Duration > 0 {
		return fmt.Sprintf("+%s %s %s", e.At, e.Kind, e.Duration)
	}
	return fmt.Sprintf("+%s %s", e.At, e.Kind)
}

// Schedule is a seeded, replayable sequence of timed faults, sorted by At.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Generate draws a deterministic schedule of n fault events spread across
// horizon. The same (seed, n, horizon) always yields the same schedule;
// window faults last between 1% and 10% of the horizon. Events are placed in
// the first 80% of the horizon so their recovery windows fit inside it.
func Generate(seed int64, n int, horizon time.Duration) Schedule {
	return generate(seed, n, horizon, 4)
}

// GenerateFabric draws a deterministic schedule for a replicated broker
// fabric: the four single-broker kinds plus LeaderKill. It is a separate
// generator — not a widened Generate — so existing seeded schedules keep
// their exact event sequences.
func GenerateFabric(seed int64, n int, horizon time.Duration) Schedule {
	return generate(seed, n, horizon, 5)
}

func generate(seed int64, n int, horizon time.Duration, kinds int) Schedule {
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed, Events: make([]Event, 0, n)}
	span := horizon * 8 / 10
	if span <= 0 {
		span = horizon
	}
	for i := 0; i < n; i++ {
		e := Event{
			At:   time.Duration(rng.Int63n(int64(span) + 1)),
			Kind: FaultKind(rng.Intn(kinds)),
		}
		if e.Kind != ConnDrop && e.Kind != LeaderKill {
			min := horizon / 100
			if min <= 0 {
				min = 1
			}
			e.Duration = min + time.Duration(rng.Int63n(int64(horizon/10-min)+1))
		}
		s.Events = append(s.Events, e)
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
	return s
}

// String renders the whole schedule as the replayable artifact recorded in
// failure reports: "seed=42: +1s conn-drop; +5s partition 2s; ...".
func (s Schedule) String() string {
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return fmt.Sprintf("seed=%d: %s", s.Seed, strings.Join(parts, "; "))
}
