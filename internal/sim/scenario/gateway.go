package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	apiv1 "repro/api/v1"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// GatewayMetric is the topic the gateway load scenario publishes.
const GatewayMetric = "sim.gateway.capacity"

// GatewayConfig parameterizes the deterministic gateway fan-out scenario: N
// subscribers attach to one metric stream through the public edge's bounded
// send queues; a SlowFraction of them never drain a single frame. The
// invariants the run must prove:
//
//   - every well-behaved subscriber receives every tuple exactly once, in
//     stream order (zero acked-tuple loss);
//   - every slow subscriber is evicted with a slow_consumer error frame
//     instead of blocking the bus or growing an unbounded queue;
//   - total heap stays within a fixed per-subscriber budget.
//
// Determinism does not come from scheduling (bridges are real goroutines)
// but from a publish-batch barrier: each batch is at most the queue bound
// and the next batch is published only after every well-behaved subscriber
// drained the previous one, so a well-behaved queue can never overflow no
// matter how the scheduler interleaves — the outcome is invariant even
// though the interleavings are not.
type GatewayConfig struct {
	// Seed places the slow subscribers deterministically.
	Seed int64
	// Subscribers is the total attached client count (default 1000).
	Subscribers int
	// SlowFraction is the share of subscribers that never drain
	// (default 0.1).
	SlowFraction float64
	// Tuples is how many tuples are published in total (default 4*Queue).
	Tuples int
	// Queue bounds each subscriber's send queue (default 64).
	Queue int
}

func (c *GatewayConfig) defaults() {
	if c.Subscribers <= 0 {
		c.Subscribers = 1000
	}
	if c.SlowFraction <= 0 {
		c.SlowFraction = 0.1
	}
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.Tuples <= 0 {
		c.Tuples = 4 * c.Queue
	}
}

// GatewayReport is the outcome of one gateway fan-out run.
type GatewayReport struct {
	Subscribers int           // total attached
	Slow        int           // configured to never drain
	Tuples      int           // published to the topic
	Delivered   uint64        // frames drained by well-behaved subscribers
	Evicted     int           // slow subscribers cut loose
	HeapBytes   uint64        // live heap after the run (post-GC)
	Elapsed     time.Duration // wall time of the run
}

// RunGateway executes the scenario and checks its invariants, returning an
// error on the first violation.
func RunGateway(cfg GatewayConfig) (GatewayReport, error) {
	cfg.defaults()
	start := time.Now()

	// Retention must hold the whole run: a zero-loss claim is meaningless if
	// the broker may silently age entries out from under a cursor.
	broker := stream.NewBroker(cfg.Tuples)
	defer broker.Close()
	reg := obs.NewRegistry()
	gw := gateway.New(gateway.NewBusBackend(broker, 0), gateway.Config{
		QueueSize: cfg.Queue,
		Rate:      -1,
		Obs:       reg,
	})
	defer gw.Close()

	nSlow := int(float64(cfg.Subscribers) * cfg.SlowFraction)
	slow := make([]bool, cfg.Subscribers)
	for _, i := range rand.New(rand.NewSource(cfg.Seed)).Perm(cfg.Subscribers)[:nSlow] {
		slow[i] = true
	}

	ctx := context.Background()
	var well []*gateway.Subscriber
	var slowSubs []*gateway.Subscriber
	for i := 0; i < cfg.Subscribers; i++ {
		principal := fmt.Sprintf("sub-%05d", i)
		sub, err := gw.Attach(ctx, principal, GatewayMetric, 0)
		if err != nil {
			return GatewayReport{}, fmt.Errorf("attach %s: %w", principal, err)
		}
		if slow[i] {
			slowSubs = append(slowSubs, sub)
		} else {
			well = append(well, sub)
		}
	}

	// Publish-batch barrier: batches of at most Queue tuples, every
	// well-behaved subscriber drains the batch before the next goes out.
	// The drain fans out over a bounded worker pool; each worker verifies
	// per-subscriber stream-order contiguity as it goes.
	base := time.Unix(1700000000, 0).UnixNano()
	lastID := make([]uint64, len(well))
	var delivered atomic.Uint64
	published := 0
	for published < cfg.Tuples {
		n := cfg.Queue
		if cfg.Tuples-published < n {
			n = cfg.Tuples - published
		}
		payloads := make([][]byte, n)
		for i := 0; i < n; i++ {
			seq := published + i
			in := telemetry.NewFact(telemetry.MetricID(GatewayMetric), base+int64(seq)*int64(time.Second), float64(seq))
			p, err := in.MarshalBinary()
			if err != nil {
				return GatewayReport{}, err
			}
			payloads[i] = p
		}
		if _, err := broker.PublishBatch(ctx, GatewayMetric, payloads); err != nil {
			return GatewayReport{}, fmt.Errorf("publish batch at %d: %w", published, err)
		}
		published += n

		drainCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
		if err := drainBatch(drainCtx, well, lastID, n, &delivered); err != nil {
			cancel()
			return GatewayReport{}, err
		}
		cancel()
	}

	// Every slow subscriber must have been evicted with the contract's
	// slow_consumer frame (Tuples > Queue guarantees the overflow happened).
	evicted := 0
	for _, sub := range slowSubs {
		select {
		case fr := <-sub.Final():
			if fr.Type != apiv1.FrameError || fr.Error == nil || fr.Error.Code != apiv1.CodeSlowConsumer {
				return GatewayReport{}, fmt.Errorf("slow subscriber %s: terminal frame %+v, want slow_consumer", sub.Principal(), fr)
			}
			evicted++
		case <-time.After(time.Minute):
			return GatewayReport{}, fmt.Errorf("slow subscriber %s not evicted", sub.Principal())
		}
		if !sub.Evicted() {
			return GatewayReport{}, fmt.Errorf("slow subscriber %s: Evicted() false after terminal frame", sub.Principal())
		}
	}

	// Zero-loss check: every well-behaved subscriber saw exactly the full
	// stream.
	for i, id := range lastID {
		if id != uint64(cfg.Tuples) {
			return GatewayReport{}, fmt.Errorf("well-behaved subscriber %d stopped at stream ID %d of %d", i, id, cfg.Tuples)
		}
	}
	for _, sub := range well {
		if sub.Evicted() {
			return GatewayReport{}, fmt.Errorf("well-behaved subscriber %s evicted", sub.Principal())
		}
		sub.Close()
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	return GatewayReport{
		Subscribers: cfg.Subscribers,
		Slow:        nSlow,
		Tuples:      cfg.Tuples,
		Delivered:   delivered.Load(),
		Evicted:     evicted,
		HeapBytes:   ms.HeapAlloc,
		Elapsed:     time.Since(start),
	}, nil
}

// drainBatch pulls exactly n frames from every subscriber in subs, checking
// stream-order contiguity against lastID, over a bounded worker pool.
func drainBatch(ctx context.Context, subs []*gateway.Subscriber, lastID []uint64, n int, delivered *atomic.Uint64) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(subs) {
		workers = len(subs)
	}
	if workers < 1 {
		return nil
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	next := atomic.Int64{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(subs) {
					return
				}
				sub := subs[i]
				for k := 0; k < n; k++ {
					fr, more := sub.Next(ctx)
					if fr.Type != apiv1.FrameTuple || !more {
						errs <- fmt.Errorf("subscriber %d: frame %d/%d of batch: %+v more=%v", i, k+1, n, fr, more)
						return
					}
					if fr.Tuple.StreamID != lastID[i]+1 {
						errs <- fmt.Errorf("subscriber %d: stream ID %d after %d (gap or reorder)", i, fr.Tuple.StreamID, lastID[i])
						return
					}
					lastID[i] = fr.Tuple.StreamID
					delivered.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
