package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/stream"
)

// fabricTTL is the leader-lease TTL of the simulated fabric; retries that
// must wait out a dead leader's lease advance virtual time in thirds of it.
const fabricTTL = 3 * time.Second

// FabricConfig parameterizes a deterministic replicated-fabric scenario.
// Everything derives from Seed, so two runs with equal config produce
// byte-identical transcripts.
type FabricConfig struct {
	// Seed drives payloads, gateway choice, and the chaos-phase schedule.
	Seed int64
	// Topics is how many replicated topics carry load (default 3).
	Topics int
	// Batch is how many payloads each publish batch carries (default 4) —
	// the in-process stand-in for a client's coalesced flush, so a leader
	// kill lands "mid batch" from the producer's point of view.
	Batch int
	// ChaosEvents sizes the seeded GenerateFabric schedule of the final
	// phase (default 6).
	ChaosEvents int
}

func (c *FabricConfig) defaults() {
	if c.Topics <= 0 {
		c.Topics = 3
	}
	if c.Batch <= 0 {
		c.Batch = 4
	}
	if c.ChaosEvents <= 0 {
		c.ChaosEvents = 6
	}
}

// FabricReport is the outcome of one RunFabric. Transcript is the replayable
// artifact (byte-reproducible for a fixed config) and Digest its sha256.
type FabricReport struct {
	// Schedule is the chaos-phase fault schedule (phases 1-4 are fixed).
	Schedule   sim.Schedule
	Transcript string
	Digest     string

	Acked     uint64 // batches acknowledged to the producer
	Entries   uint64 // tuples inside acked batches
	Failovers uint64 // leader promotions, summed over nodes
	Fenced    uint64 // stale-leader publishes rejected by epoch fencing
	Redirects uint64 // not-leader redirects the producer followed
	NoQuorum  uint64 // publishes refused for lack of a replication quorum

	// Violations lists broken fabric invariants (empty on a healthy run).
	Violations []string
	// Elapsed is how much virtual time the run covered.
	Elapsed time.Duration
}

// ackedBatch records one batch the fabric acknowledged: the ID the leader
// returned and the exact payloads, so the final audit can prove every acked
// tuple survives on every live replica.
type ackedBatch struct {
	firstID  uint64
	payloads [][]byte
}

// fabricEnv is a three-node in-process broker fabric on one virtual clock:
// nodes share a lease table and a placement ring, and reach each other
// through gated peers so the scenario can kill nodes and cut links
// deterministically.
type fabricEnv struct {
	clock *sim.Virtual
	start time.Time
	table *cluster.LeaseTable
	ring  *cluster.Ring
	nodes map[string]*stream.FabricNode
	order []string
	down  map[string]bool
	cut   map[string]bool // severed links, keyed linkKey(a, b)

	rng   *rand.Rand
	seq   int
	inv   *invariants
	rep   *FabricReport
	b     strings.Builder
	acked map[string][]ackedBatch
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "<->" + b
}

// gatedPeer interposes the scenario's fault state between two fabric nodes:
// while the target is down, or the link is cut, every call fails.
type gatedPeer struct {
	env      *fabricEnv
	from, to string
	n        *stream.FabricNode
}

func (g *gatedPeer) gate() error {
	if g.env.down[g.from] || g.env.down[g.to] {
		return fmt.Errorf("sim: node down on link %s->%s", g.from, g.to)
	}
	if g.env.cut[linkKey(g.from, g.to)] {
		return fmt.Errorf("sim: link %s->%s cut", g.from, g.to)
	}
	return nil
}

func (g *gatedPeer) Publish(ctx context.Context, topic string, p []byte) (uint64, error) {
	if err := g.gate(); err != nil {
		return 0, err
	}
	return g.n.Publish(ctx, topic, p)
}

func (g *gatedPeer) PublishBatch(ctx context.Context, topic string, p [][]byte) (uint64, error) {
	if err := g.gate(); err != nil {
		return 0, err
	}
	return g.n.PublishBatch(ctx, topic, p)
}

func (g *gatedPeer) Latest(ctx context.Context, topic string) (stream.Entry, error) {
	if err := g.gate(); err != nil {
		return stream.Entry{}, err
	}
	return g.n.Latest(ctx, topic)
}

func (g *gatedPeer) Range(ctx context.Context, topic string, from, to uint64, max int) ([]stream.Entry, error) {
	if err := g.gate(); err != nil {
		return nil, err
	}
	return g.n.Range(ctx, topic, from, to, max)
}

func (g *gatedPeer) Consume(ctx context.Context, topic string, afterID uint64) (stream.Entry, error) {
	if err := g.gate(); err != nil {
		return stream.Entry{}, err
	}
	return g.n.Consume(ctx, topic, afterID)
}

func (g *gatedPeer) ConsumeBatch(ctx context.Context, topic string, afterID uint64, max int) ([]stream.Entry, error) {
	if err := g.gate(); err != nil {
		return nil, err
	}
	return g.n.ConsumeBatch(ctx, topic, afterID, max)
}

func (g *gatedPeer) Subscribe(ctx context.Context, topic string, afterID uint64) (<-chan stream.Entry, error) {
	if err := g.gate(); err != nil {
		return nil, err
	}
	return g.n.Subscribe(ctx, topic, afterID)
}

func (g *gatedPeer) Replicate(ctx context.Context, topic string, epoch uint64, entries []stream.Entry) (uint64, error) {
	if err := g.gate(); err != nil {
		return 0, err
	}
	return g.n.Replicate(ctx, topic, epoch, entries)
}

func (g *gatedPeer) TopicTail(ctx context.Context, topic string) (uint64, uint64, error) {
	if err := g.gate(); err != nil {
		return 0, 0, err
	}
	return g.n.TopicTail(ctx, topic)
}

var _ stream.Peer = (*gatedPeer)(nil)

func newFabricEnv(seed int64, rep *FabricReport, inv *invariants) (*fabricEnv, error) {
	start := time.Unix(0, 0)
	env := &fabricEnv{
		clock: sim.NewVirtual(start),
		start: start,
		ring:  cluster.NewRing(16),
		nodes: make(map[string]*stream.FabricNode),
		order: []string{"n0", "n1", "n2"},
		down:  make(map[string]bool),
		cut:   make(map[string]bool),
		rng:   rand.New(rand.NewSource(seed ^ 0xfab51c)),
		inv:   inv,
		rep:   rep,
		acked: make(map[string][]ackedBatch),
	}
	env.table = cluster.NewLeaseTable(env.clock, fabricTTL)
	for _, id := range env.order {
		env.ring.Join(id, id)
	}
	for _, id := range env.order {
		id := id
		node, err := stream.NewFabricNode(stream.FabricConfig{
			ID:                id,
			Addr:              id,
			Broker:            stream.NewBroker(0),
			Ring:              env.ring,
			Leases:            env.table,
			ReplicationFactor: len(env.order),
			LeaseTTL:          fabricTTL,
			Clock:             env.clock,
			PeerDial: func(to, addr string) (stream.Peer, error) {
				return &gatedPeer{env: env, from: id, to: to, n: env.nodes[to]}, nil
			},
		})
		if err != nil {
			return nil, err
		}
		env.nodes[id] = node
	}
	return env, nil
}

func (env *fabricEnv) close() {
	for _, id := range env.order {
		env.nodes[id].Broker().Close()
	}
}

func (env *fabricEnv) logf(format string, args ...interface{}) {
	fmt.Fprintf(&env.b, "t=%s ", env.clock.Now().Sub(env.start))
	fmt.Fprintf(&env.b, format, args...)
	env.b.WriteByte('\n')
}

// leaderOf returns the current valid lease holder of topic ("" if none).
func (env *fabricEnv) leaderOf(topic string) string {
	if l, ok := env.table.Holder(topic); ok && l.Valid(env.clock.Now()) {
		return l.Holder
	}
	return ""
}

// pick chooses the producer's gateway: the preferred node when alive,
// otherwise the first live node in fabric order.
func (env *fabricEnv) pick(preferred string) string {
	if preferred != "" && !env.down[preferred] {
		return preferred
	}
	for _, id := range env.order {
		if !env.down[id] {
			return id
		}
	}
	return ""
}

// failoversTotal sums leader promotions over all nodes.
func (env *fabricEnv) failoversTotal() uint64 {
	var total uint64
	for _, id := range env.order {
		total += env.nodes[id].Failovers()
	}
	return total
}

// batch mints Batch deterministic payloads for topic.
func (env *fabricEnv) batch(topic string, n int) [][]byte {
	payloads := make([][]byte, n)
	for i := range payloads {
		env.seq++
		payloads[i] = []byte(fmt.Sprintf("%s#%05d:%08x", topic, env.seq, env.rng.Uint32()))
	}
	return payloads
}

// publish drives one batch through the fabric the way a fabric-mode client
// would: follow not-leader redirects for free, rotate off dead gateways, and
// wait out an expired lease before retrying — at-least-once into the log,
// at-most-once acked here. It records the ack for the final durability audit.
func (env *fabricEnv) publish(ctx context.Context, topic string, payloads [][]byte) bool {
	target := env.leaderOf(topic)
	for attempt := 0; attempt < 64; attempt++ {
		via := env.pick(target)
		if via == "" {
			env.inv.failf("publish-stuck: topic %s has no live nodes", topic)
			return false
		}
		firstID, err := env.nodes[via].PublishBatch(ctx, topic, payloads)
		if err == nil {
			env.acked[topic] = append(env.acked[topic], ackedBatch{firstID: firstID, payloads: payloads})
			env.rep.Acked++
			env.rep.Entries += uint64(len(payloads))
			env.logf("ack topic=%s first=%d n=%d via=%s epoch=%d",
				topic, firstID, len(payloads), via, env.nodes[via].Broker().Epoch(topic))
			return true
		}
		var nl *stream.NotLeaderError
		switch {
		case errors.As(err, &nl):
			env.rep.Redirects++
			if nl.LeaderID != "" && !env.down[nl.LeaderID] && nl.LeaderID != via {
				target = nl.LeaderID // routing, not a fault: retry immediately
				continue
			}
			// Redirect points at a dead leader: wait out its lease so a
			// follower can promote, then retry anywhere live.
			env.logf("retry topic=%s leader %q dead, waiting lease out", topic, nl.LeaderID)
			target = ""
			env.clock.Advance(fabricTTL / 3)
		case errors.Is(err, stream.ErrEpochFenced):
			env.rep.Fenced++
			env.logf("fenced topic=%s via=%s", topic, via)
			target = ""
		case errors.Is(err, stream.ErrNoQuorum):
			env.rep.NoQuorum++
			env.logf("no-quorum topic=%s via=%s", topic, via)
			target = ""
			env.clock.Advance(fabricTTL / 3)
		default:
			env.logf("retry topic=%s via=%s err=%v", topic, via, err)
			target = ""
			env.clock.Advance(fabricTTL / 3)
		}
	}
	env.inv.failf("publish-stuck: topic %s batch never acked", topic)
	return false
}

// kill crashes a node; revive brings it back (its log intact, its lease
// long expired by the time the scenario revives it).
func (env *fabricEnv) kill(id string) {
	env.down[id] = true
	env.logf("kill node=%s", id)
}

func (env *fabricEnv) revive(id string) {
	if env.down[id] {
		delete(env.down, id)
		env.logf("revive node=%s", id)
	}
}

func (env *fabricEnv) sever(a, b string) {
	env.cut[linkKey(a, b)] = true
	env.logf("partition %s", linkKey(a, b))
}

func (env *fabricEnv) heal(a, b string) {
	if env.cut[linkKey(a, b)] {
		delete(env.cut, linkKey(a, b))
		env.logf("heal %s", linkKey(a, b))
	}
}

// firstFollower returns the first live replica of topic that is not its
// leader, in ring order.
func (env *fabricEnv) firstFollower(topic, leader string) string {
	for _, id := range env.ring.Replicas(topic, len(env.order)) {
		if id != leader && !env.down[id] {
			return id
		}
	}
	return ""
}

// statusOf returns the leader-side replication status row for topic.
func (env *fabricEnv) statusOf(topic, leader string) (stream.ReplicaStatus, bool) {
	if leader == "" || env.down[leader] {
		return stream.ReplicaStatus{}, false
	}
	for _, st := range env.nodes[leader].Status() {
		if st.Topic == topic {
			return st, true
		}
	}
	return stream.ReplicaStatus{}, false
}

// RunFabric executes one deterministic replicated-fabric scenario: a
// three-node broker fabric on a virtual clock runs a fixed fault matrix —
// a leader kill with a batch in flight, a leader/follower partition, a
// stale-leader fencing probe, a double failover — followed by a seeded
// GenerateFabric chaos phase, while a producer keeps publishing coalesced
// batches through redirects and retries. The invariants are the tentpole's
// acceptance bar: no acked tuple is ever lost, per-topic acked IDs stay
// monotone, topic epochs never regress, and the transcript is
// byte-reproducible for a fixed seed.
//
// RunFabric returns the report together with a non-nil error when any
// invariant was violated; the report is always valid for inspection.
func RunFabric(cfg FabricConfig) (*FabricReport, error) {
	cfg.defaults()
	inv := &invariants{}
	rep := &FabricReport{}
	env, err := newFabricEnv(cfg.Seed, rep, inv)
	if err != nil {
		return nil, err
	}
	defer env.close()

	ctx := context.Background()
	topics := make([]string, cfg.Topics)
	for i := range topics {
		topics[i] = fmt.Sprintf("fab.t%d", i)
	}
	fmt.Fprintf(&env.b, "fabric seed=%d nodes=%d topics=%d batch=%d ttl=%s\n",
		cfg.Seed, len(env.order), cfg.Topics, cfg.Batch, fabricTTL)

	// Phase 0 — steady state: establish a leader per topic and a baseline log.
	env.logf("phase steady-state")
	for _, topic := range topics {
		env.publish(ctx, topic, env.batch(topic, cfg.Batch))
		env.publish(ctx, topic, env.batch(topic, cfg.Batch))
		env.logf("leader topic=%s holder=%s", topic, env.leaderOf(topic))
	}

	// Phase 1 — leader kill with a batch in flight: the producer's next
	// coalesced batch is already addressed to the leader when it dies, so
	// the ack must come from a promoted follower via retry.
	t0 := topics[0]
	env.logf("phase leader-kill topic=%s", t0)
	before := env.failoversTotal()
	victim := env.leaderOf(t0)
	inFlight := env.batch(t0, cfg.Batch)
	env.kill(victim)
	env.publish(ctx, t0, inFlight)
	env.publish(ctx, t0, env.batch(t0, cfg.Batch))
	if got := env.failoversTotal(); got == before {
		inv.failf("failover: killing leader %s of %s promoted nobody", victim, t0)
	}
	env.revive(victim)
	env.publish(ctx, t0, env.batch(t0, cfg.Batch)) // backfills the revived node

	// Phase 2 — partition between leader and follower: a quorum of 2/3
	// keeps acks flowing, the leader's lag grows, and the first publish
	// after healing backfills the follower.
	t1 := topics[1%len(topics)]
	env.publish(ctx, t1, env.batch(t1, cfg.Batch))
	leader1 := env.leaderOf(t1)
	follower := env.firstFollower(t1, leader1)
	env.logf("phase partition topic=%s leader=%s follower=%s", t1, leader1, follower)
	env.sever(leader1, follower)
	env.publish(ctx, t1, env.batch(t1, cfg.Batch))
	env.publish(ctx, t1, env.batch(t1, cfg.Batch))
	if st, ok := env.statusOf(t1, env.leaderOf(t1)); ok {
		env.logf("lag topic=%s lag=%d epoch=%d", t1, st.Lag, st.Epoch)
		if env.leaderOf(t1) == leader1 && st.Lag == 0 {
			inv.failf("lag: partitioned follower %s shows no lag on %s", follower, t1)
		}
	}
	env.heal(leader1, follower)
	env.publish(ctx, t1, env.batch(t1, cfg.Batch))
	if st, ok := env.statusOf(t1, env.leaderOf(t1)); ok && st.Lag != 0 {
		inv.failf("lag: %s still lags %d entries after heal and publish", t1, st.Lag)
	}

	// Phase 3 — stale-leader fencing: the coordination service revokes the
	// lease behind the leader's back, another node promotes (raising the
	// local epoch everywhere via its beacon), and the deposed leader's next
	// publish MUST be rejected by the epoch fence — never silently accepted.
	t2 := topics[2%len(topics)]
	env.publish(ctx, t2, env.batch(t2, cfg.Batch))
	stale := env.leaderOf(t2)
	env.logf("phase fence topic=%s stale=%s", t2, stale)
	env.table.Expire(t2)
	for _, id := range env.order {
		if id != stale && !env.down[id] {
			env.nodes[id].Tick(ctx)
		}
	}
	fencedBatch := env.batch(t2, cfg.Batch)
	if _, ferr := env.nodes[stale].PublishBatch(ctx, t2, fencedBatch); errors.Is(ferr, stream.ErrEpochFenced) {
		rep.Fenced++
		env.logf("fenced topic=%s stale=%s err=%v", t2, stale, ferr)
	} else {
		inv.failf("fencing: stale leader %s publish on %s returned %v, want epoch fence", stale, t2, ferr)
	}
	env.publish(ctx, t2, fencedBatch) // the producer retries via the new leader

	// Phase 4 — double failover: two leader generations die back to back
	// (with the first victim revived in between to preserve quorum).
	env.logf("phase double-failover topic=%s", t0)
	k1 := env.leaderOf(t0)
	if k1 == "" {
		env.publish(ctx, t0, env.batch(t0, cfg.Batch))
		k1 = env.leaderOf(t0)
	}
	env.kill(k1)
	env.publish(ctx, t0, env.batch(t0, cfg.Batch))
	env.revive(k1)
	k2 := env.leaderOf(t0)
	if k2 != "" && k2 != k1 {
		env.kill(k2)
		env.publish(ctx, t0, env.batch(t0, cfg.Batch))
		env.revive(k2)
	} else {
		inv.failf("failover: no distinct second leader for %s (got %q after killing %q)", t0, k2, k1)
	}
	env.publish(ctx, t0, env.batch(t0, cfg.Batch))

	// Phase 5 — seeded chaos: a GenerateFabric schedule drives further
	// kills and partitions while the producer keeps batches flowing.
	horizon := time.Minute
	rep.Schedule = sim.GenerateFabric(cfg.Seed, cfg.ChaosEvents, horizon)
	env.logf("phase chaos %s", rep.Schedule)
	chaosStart := env.clock.Now()
	var healAt time.Time
	var healLink [2]string
	for i, e := range rep.Schedule.Events {
		if due := chaosStart.Add(e.At); env.clock.Now().Before(due) {
			env.clock.Advance(due.Sub(env.clock.Now()))
		}
		if !healAt.IsZero() && !env.clock.Now().Before(healAt) {
			env.heal(healLink[0], healLink[1])
			healAt = time.Time{}
		}
		topic := topics[i%len(topics)]
		switch e.Kind {
		case sim.LeaderKill:
			if len(env.down) > 0 {
				for _, id := range env.order {
					env.revive(id)
				}
			}
			victim := env.pick(env.leaderOf(topic))
			env.logf("chaos %s topic=%s victim=%s", e.Kind, topic, victim)
			env.kill(victim)
		case sim.Partition:
			// A cut on top of a dead node could leave no reachable quorum;
			// restore full membership before severing.
			if len(env.down) > 0 {
				for _, id := range env.order {
					env.revive(id)
				}
			}
			l := env.leaderOf(topic)
			if l == "" || env.down[l] {
				env.logf("chaos %s topic=%s skipped (no live leader)", e.Kind, topic)
				break
			}
			f := env.firstFollower(topic, l)
			if f == "" {
				env.logf("chaos %s topic=%s skipped (no live follower)", e.Kind, topic)
				break
			}
			env.heal(healLink[0], healLink[1]) // one cut at a time
			env.logf("chaos %s topic=%s %s", e.Kind, topic, linkKey(l, f))
			env.sever(l, f)
			healAt = env.clock.Now().Add(e.Duration)
			healLink = [2]string{l, f}
		default:
			// Single-broker kinds have no fabric analogue here; they just
			// let virtual time pass.
			env.logf("chaos %s idle %s", e.Kind, e.Duration)
			env.clock.Advance(e.Duration)
		}
		env.publish(ctx, topic, env.batch(topic, cfg.Batch))
	}

	// Converge: heal everything, revive everyone, and flush one batch per
	// topic so gap backfill repairs every replica before the audit.
	env.heal(healLink[0], healLink[1])
	for _, id := range env.order {
		env.revive(id)
	}
	env.clock.Advance(fabricTTL)
	for _, topic := range topics {
		env.publish(ctx, topic, env.batch(topic, cfg.Batch))
	}

	// Audit — the no-acked-loss invariant: every batch the fabric ever
	// acknowledged must be present, bit-exact, on EVERY live replica, and
	// per-topic acked IDs must be strictly monotone in ack order.
	for _, topic := range topics {
		var last uint64
		for _, b := range env.acked[topic] {
			inv.checkMonotoneID(topic, last, b.firstID)
			last = b.firstID + uint64(len(b.payloads)) - 1
			for _, id := range env.order {
				entries, rerr := env.nodes[id].Broker().Range(ctx, topic, b.firstID, last, 0)
				if rerr != nil {
					inv.failf("acked-loss: %s ids %d..%d unreadable on %s: %v", topic, b.firstID, last, id, rerr)
					continue
				}
				if len(entries) != len(b.payloads) {
					inv.failf("acked-loss: %s ids %d..%d: %s holds %d of %d entries",
						topic, b.firstID, last, id, len(entries), len(b.payloads))
					continue
				}
				for j, e := range entries {
					if string(e.Payload) != string(b.payloads[j]) {
						inv.failf("acked-loss: %s id %d diverged on %s", topic, e.ID, id)
					}
				}
			}
		}
		epoch := env.nodes[env.order[0]].Broker().Epoch(topic)
		if epoch == 0 {
			inv.failf("epoch: topic %s never left epoch 0", topic)
		}
		env.logf("audit topic=%s acked=%d epoch=%d", topic, len(env.acked[topic]), epoch)
	}

	rep.Failovers = env.failoversTotal()
	rep.Elapsed = env.clock.Now().Sub(env.start)
	rep.Violations = inv.violations
	sort.Strings(rep.Violations)

	fmt.Fprintf(&env.b, "end acked=%d entries=%d failovers=%d fenced=%d redirects=%d noquorum=%d violations=%d\n",
		rep.Acked, rep.Entries, rep.Failovers, rep.Fenced, rep.Redirects, rep.NoQuorum, len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Fprintf(&env.b, "violation %s\n", v)
	}

	rep.Transcript = env.b.String()
	sum := sha256.Sum256([]byte(rep.Transcript))
	rep.Digest = hex.EncodeToString(sum[:])

	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("scenario: %d fabric invariant violation(s); first: %s", len(rep.Violations), rep.Violations[0])
	}
	return rep, nil
}
