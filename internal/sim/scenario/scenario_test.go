package scenario

import (
	"flag"
	"strings"
	"testing"
	"time"

	"repro/internal/delphi"
)

// -sim.seed replays a scenario from a specific seed: a failure artifact is
// just "go test ./internal/sim/scenario -run TestScenario -sim.seed=N".
var simSeed = flag.Int64("sim.seed", 42, "seed for the deterministic scenario")

// quickModel is trained once per test binary so both reproducibility runs
// share it (Run would otherwise train its own, which is also deterministic
// but slower).
var quickModel *delphi.Model

func model(t *testing.T) *delphi.Model {
	t.Helper()
	if quickModel == nil {
		m, err := TrainQuickModel(7)
		if err != nil {
			t.Fatalf("training quick model: %v", err)
		}
		quickModel = m
	}
	return quickModel
}

// TestScenarioReproducible is the acceptance gate for the simulation
// harness: the full pipeline (sampler -> Fact -> Delphi -> Insight ->
// archive -> query) with injected faults must be byte-for-byte reproducible
// across two runs of the same seed, entirely on virtual time, in well under
// two seconds of wall clock.
func TestScenarioReproducible(t *testing.T) {
	cfg := Config{Seed: *simSeed, Faults: 6, Horizon: 3 * time.Minute, Model: model(t)}

	wall0 := time.Now()
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("run A: %v\ntranscript:\n%s", err, a.Transcript)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("run B: %v\ntranscript:\n%s", err, b.Transcript)
	}
	wall := time.Since(wall0)

	if a.Digest != b.Digest || a.Transcript != b.Transcript {
		t.Fatalf("same seed diverged: %s vs %s\n--- A ---\n%s\n--- B ---\n%s",
			a.Digest, b.Digest, a.Transcript, b.Transcript)
	}
	if a.Applied < 3 {
		t.Fatalf("only %d faults applied, want >= 3:\n%s", a.Applied, a.Schedule)
	}
	if a.Injected == 0 {
		t.Fatalf("schedule applied but no bus operations were faulted:\n%s", a.Transcript)
	}
	if a.Elapsed < 3*time.Minute {
		t.Fatalf("virtual elapsed %v, want >= 3m", a.Elapsed)
	}
	if wall > 2*time.Second {
		t.Fatalf("two runs took %v wall clock, want < 2s", wall)
	}
	if a.Polls == 0 || a.Facts == 0 || a.Insights == 0 {
		t.Fatalf("pipeline idle: polls=%d facts=%d insights=%d", a.Polls, a.Facts, a.Insights)
	}
	if a.Archived == 0 {
		t.Fatalf("no tuples evicted into the archive (history window too large?)")
	}
	if len(a.Violations) != 0 {
		t.Fatalf("invariant violations: %v", a.Violations)
	}
	t.Logf("seed=%d digest=%s polls=%d facts=%d predicted=%d insights=%d archived=%d injected=%d wall=%v",
		cfg.Seed, a.Digest, a.Polls, a.Facts, a.Predicted, a.Insights, a.Archived, a.Injected, wall)
}

// TestScenarioSeedsDiverge guards against the schedule or workload ignoring
// the seed: different seeds must produce different transcripts.
func TestScenarioSeedsDiverge(t *testing.T) {
	m := model(t)
	a, err := Run(Config{Seed: 1, Model: m, Horizon: time.Minute})
	if err != nil {
		t.Fatalf("seed 1: %v", err)
	}
	b, err := Run(Config{Seed: 2, Model: m, Horizon: time.Minute})
	if err != nil {
		t.Fatalf("seed 2: %v", err)
	}
	if a.Digest == b.Digest {
		t.Fatalf("seeds 1 and 2 produced identical transcripts (digest %s)", a.Digest)
	}
}

// TestScenarioExercisesDelphiAndQueries spot-checks transcript content: the
// predictive path fills skipped ticks and the query pass answers over the
// merged history+archive.
func TestScenarioExercisesDelphiAndQueries(t *testing.T) {
	rep, err := Run(Config{Seed: *simSeed, Model: model(t)})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Predicted == 0 {
		t.Fatalf("no Delphi predictions published; AIMD never relaxed?\n%s", rep.Transcript)
	}
	if !strings.Contains(rep.Transcript, "src=predicted") {
		t.Fatalf("transcript carries no predicted tuples:\n%s", rep.Transcript)
	}
	if !strings.Contains(rep.Transcript, "query \"SELECT COUNT(*)") {
		t.Fatalf("transcript carries no query results:\n%s", rep.Transcript)
	}
	if !strings.Contains(rep.Transcript, "fault ") {
		t.Fatalf("transcript carries no fault lines:\n%s", rep.Transcript)
	}
}
