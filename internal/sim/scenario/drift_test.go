package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/delphi"
)

// driftQuickModel is trained once per test binary so all drift runs share it.
var driftQuickModel *delphi.Model

func driftModel(t *testing.T) *delphi.Model {
	t.Helper()
	if driftQuickModel == nil {
		m, err := TrainDriftModel(7)
		if err != nil {
			t.Fatalf("training drift model: %v", err)
		}
		driftQuickModel = m
	}
	return driftQuickModel
}

// TestDriftScenarioReproducible is the acceptance gate for the continuous-
// accuracy harness: regime shift → detector trip → measured-only fallback →
// synchronous retrain → promotion → error recovery, byte-for-byte
// reproducible across two runs of the same seed on virtual time.
func TestDriftScenarioReproducible(t *testing.T) {
	cfg := DriftConfig{Seed: *simSeed, Model: driftModel(t)}

	wall0 := time.Now()
	a, err := RunDrift(cfg)
	if err != nil {
		t.Fatalf("run A: %v\ntranscript:\n%s", err, a.Transcript)
	}
	b, err := RunDrift(cfg)
	if err != nil {
		t.Fatalf("run B: %v\ntranscript:\n%s", err, b.Transcript)
	}
	wall := time.Since(wall0)

	if a.Digest != b.Digest || a.Transcript != b.Transcript {
		t.Fatalf("same seed diverged: %s vs %s\n--- A ---\n%s\n--- B ---\n%s",
			a.Digest, b.Digest, a.Transcript, b.Transcript)
	}
	if a.TripPoll < 48 {
		t.Fatalf("trip poll %d, want inside the shifted phase (>= 48)", a.TripPoll)
	}
	if a.PromotedVersion != 1 {
		t.Fatalf("promoted version %d, want 1", a.PromotedVersion)
	}
	if a.Suppressed == 0 {
		t.Fatal("fallback never suppressed a forecast")
	}
	if !(a.RecoveredErr < a.ShiftErr) {
		t.Fatalf("no recovery: shift=%.4f recovered=%.4f", a.ShiftErr, a.RecoveredErr)
	}
	t.Logf("seed=%d digest=%s trip=%d pre=%.4f shift=%.4f recovered=%.4f wall=%v",
		cfg.Seed, a.Digest, a.TripPoll, a.PreShiftErr, a.ShiftErr, a.RecoveredErr, wall)
}

// TestDriftScenarioSeedsDiverge guards against the workload ignoring the
// seed: different seeds must produce different transcripts.
func TestDriftScenarioSeedsDiverge(t *testing.T) {
	m := driftModel(t)
	a, err := RunDrift(DriftConfig{Seed: 11, Model: m})
	if err != nil {
		t.Fatalf("seed 11: %v\n%s", err, a.Transcript)
	}
	b, err := RunDrift(DriftConfig{Seed: 12, Model: m})
	if err != nil {
		t.Fatalf("seed 12: %v\n%s", err, b.Transcript)
	}
	if a.Digest == b.Digest {
		t.Fatalf("seeds 11 and 12 produced identical transcripts (digest %s)", a.Digest)
	}
}

// TestDriftScenarioTranscript spot-checks the transcript narrative and that
// no filesystem path leaks into it (the digest must not depend on temp dirs).
func TestDriftScenarioTranscript(t *testing.T) {
	rep, err := RunDrift(DriftConfig{Seed: *simSeed, Model: driftModel(t)})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, rep.Transcript)
	}
	for _, want := range []string{"drift trip poll=", "retrain class=cap", "improved=true", "pred=suppressed"} {
		if !strings.Contains(rep.Transcript, want) {
			t.Fatalf("transcript missing %q:\n%s", want, rep.Transcript)
		}
	}
	for _, leak := range []string{"/tmp", "apollo-drift"} {
		if strings.Contains(rep.Transcript, leak) {
			t.Fatalf("transcript leaks a path (%q):\n%s", leak, rep.Transcript)
		}
	}
}
