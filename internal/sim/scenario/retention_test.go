package scenario

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/archive"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestRetentionNeverDropsAckedTuple is the acceptance scenario for tiered
// retention: an hour of virtual time, one acked sample per virtual second,
// the background Compactor pass every virtual minute — and at every pass the
// invariant holds that no acked tuple inside the retention window has been
// dropped:
//
//   - age <= Raw: the exact tuple (bit-identical value) is returned by Range.
//   - age <= Rollup1m: the tuple's one-minute bucket still has coverage — a
//     raw, 10s, or 1m point — so downsampling never opens a hole.
//
// Tuples older than the outermost bound may linger (whole-file selection is
// conservative) but may never vanish early. Everything runs on sim.Virtual,
// so the run is deterministic and takes milliseconds of wall clock.
func TestRetentionNeverDropsAckedTuple(t *testing.T) {
	const metric = "sim.capacity"
	policy := archive.Retention{
		Raw:       2 * time.Minute,
		Rollup10s: 10 * time.Minute,
		Rollup1m:  40 * time.Minute,
	}

	start := time.Unix(1_000_000, 0)
	clk := sim.NewVirtual(start)
	l, err := archive.Open(t.TempDir(), archive.Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })

	comp := archive.NewCompactor(clk, time.Minute)
	comp.Add(l, policy)

	rng := rand.New(rand.NewSource(*simSeed))
	acked := make(map[int64]float64) // virtual ts (ns) -> value, only acked appends

	check := func(now int64) {
		// One Range pass over the whole retention window, then judge every
		// acked tuple against what came back. Rollup points are stamped with
		// their bucket start, so the window reaches one bucket further back
		// than the policy bound.
		from := now - int64(policy.Rollup1m) - int64(archive.Tier1mBucket)
		raw := make(map[int64]float64)
		covered := make(map[int64]bool) // 1m bucket start -> has a point
		if err := l.Range(from, now, func(in telemetry.Info) error {
			if in.Metric == metric {
				raw[in.Timestamp] = in.Value
				covered[in.Timestamp/int64(archive.Tier1mBucket)] = true
			}
			return nil
		}); err != nil {
			t.Fatalf("Range at now=%d: %v", now, err)
		}
		for ts, v := range acked {
			age := now - ts
			if age <= int64(policy.Raw) {
				if got, ok := raw[ts]; !ok || got != v {
					t.Fatalf("tuple ts=%d inside raw window lost or altered at now=%d (got %v ok=%v)",
						ts, now, got, ok)
				}
			}
			if age <= int64(policy.Rollup1m) && !covered[ts/int64(archive.Tier1mBucket)] {
				t.Fatalf("acked tuple ts=%d (age %s) has no coverage in its 1m bucket at now=%d",
					ts, time.Duration(age), now)
			}
		}
	}

	const horizon = time.Hour
	for sec := 0; sec < int(horizon/time.Second); sec++ {
		clk.Advance(time.Second)
		ts := clk.Now().UnixNano()
		in := telemetry.NewFact(metric, ts, 1000+rng.Float64()*64)
		if err := l.Append(in); err != nil {
			t.Fatalf("append at %d: %v", ts, err)
		}
		acked[ts] = in.Value
		if sec%60 == 59 {
			if err := comp.RunOnce(); err != nil {
				t.Fatalf("compaction pass: %v", err)
			}
			check(clk.Now().UnixNano())
		}
	}

	runs, errs := comp.Runs()
	if runs != uint64(horizon/time.Minute) || errs != 0 {
		t.Fatalf("compactor runs=%d errs=%d, want %d/0", runs, errs, horizon/time.Minute)
	}
	// The hierarchy actually tiered out: raw must not hold the whole hour.
	st, err := archive.DirStats(l.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if st[archive.Tier10s].Files == 0 || st[archive.Tier1m].Files == 0 {
		t.Fatalf("no rollup tiers materialized: %+v", st)
	}
	if st[archive.TierRaw].Records > uint64(2*policy.Raw/time.Second) {
		t.Fatalf("raw tier still holds %d records after an hour with Raw=%s", st[archive.TierRaw].Records, policy.Raw)
	}

	// Survives a reopen: the invariant holds against the on-disk state alone.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := archive.Open(l.Dir(), archive.Options{SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	now := clk.Now().UnixNano()
	covered := make(map[int64]bool)
	if err := re.Range(now-int64(policy.Rollup1m)-int64(archive.Tier1mBucket), now, func(in telemetry.Info) error {
		covered[in.Timestamp/int64(archive.Tier1mBucket)] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for ts := range acked {
		if age := now - ts; age <= int64(policy.Rollup1m) && !covered[ts/int64(archive.Tier1mBucket)] {
			t.Fatalf("after reopen: acked tuple ts=%d lost its 1m-bucket coverage", ts)
		}
	}
}
