package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/delphi"
	"repro/internal/delphi/registry"
	"repro/internal/score"
	"repro/internal/sim"
)

// DriftMetric is the single fact the drift scenario drives; its device class
// (the suffix after the last '.') keys the registry lineage.
const DriftMetric = "sim.nvme0.cap"

// DriftClass is DriftMetric's device class.
const DriftClass = "cap"

// DriftConfig parameterizes the deterministic drift→retrain→recover
// scenario. Everything derives from Seed, so two runs with equal config
// produce byte-identical transcripts.
type DriftConfig struct {
	// Seed drives the workload noise and (when Model is nil) training.
	Seed int64
	// PhaseA is how many polls the pre-shift regime lasts (default 48).
	PhaseA int
	// PhaseB is how many polls the shifted regime lasts before the trainer
	// runs (default 192; must leave >= 64 measured samples for retraining).
	PhaseB int
	// Recovery is how many polls follow the promotion (default 64).
	Recovery int
	// BaseTick is the virtual-clock step per poll (default 1s).
	BaseTick time.Duration
	// Model is the base Delphi model; nil trains a small one from Seed.
	Model *delphi.Model
	// Dir hosts the model registry; empty means a private temp dir removed
	// after the run (the transcript never mentions paths).
	Dir string
}

func (c *DriftConfig) defaults() {
	if c.PhaseA <= 0 {
		c.PhaseA = 48
	}
	if c.PhaseB <= 0 {
		c.PhaseB = 192
	}
	if c.Recovery <= 0 {
		c.Recovery = 64
	}
	if c.BaseTick <= 0 {
		c.BaseTick = time.Second
	}
}

// DriftReport is the outcome of one drift scenario run. Transcript replays
// byte-for-byte for equal configs; Digest is its sha256 fingerprint.
type DriftReport struct {
	Transcript string
	Digest     string

	TripPoll        int            // poll index where drift tripped (-1: never)
	Event           registry.Event // the retrain outcome
	PromotedVersion int            // class version after the retrain pass

	PreShiftErr  float64 // mean |pred-measured| before the shift
	ShiftErr     float64 // mean |pred-measured| after the shift, pre-trip
	RecoveredErr float64 // mean |pred-measured| after promotion
	Suppressed   int     // polls where fallback suppressed the forecast

	// Violations lists broken drift-loop invariants (empty on a healthy run).
	Violations []string
}

// TrainDriftModel trains the drift scenario's default base model. It is
// deliberately better trained than TrainQuickModel: the detector runs at its
// default threshold, so the base model must track the stable sinusoid well
// below it while still failing on the shifted square wave. Exposed so tests
// train once and share it across runs.
func TrainDriftModel(seed int64) (*delphi.Model, error) {
	return delphi.Train(delphi.TrainOptions{
		SeriesPerFeature: 3, SeriesLen: 150, Epochs: 15, Seed: seed,
	})
}

// driftTrace builds the full measured series: a steady ramp the base model
// tracks (~0.37 normalized residual, well under the 0.9 default threshold),
// then an alternating square wave it cannot (~2.3), with seeded noise so
// different seeds diverge. The square wave is exactly learnable from a
// 5-wide window, so a retrained combiner recovers.
func driftTrace(cfg DriftConfig) []float64 {
	n := cfg.PhaseA + cfg.PhaseB + cfg.Recovery
	trace := make([]float64, n)
	s := uint64(cfg.Seed)*6364136223846793005 + 1442695040888963407
	for i := range trace {
		s = s*6364136223846793005 + 1442695040888963407
		noise := (float64(s>>11)/float64(1<<53) - 0.5) * 0.4
		if i < cfg.PhaseA {
			trace[i] = 100 + 0.5*float64(i) + noise
		} else {
			trace[i] = 50 + noise
			if i%2 == 0 {
				trace[i] += 8
			} else {
				trace[i] -= 8
			}
		}
	}
	return trace
}

// RunDrift executes the deterministic continuous-accuracy scenario: a seeded
// regime shift trips the drift detector, the vertex drops to measured-only
// fallback, a synchronous retrain pass promotes a new model version into the
// registry, and the forecast error recovers below the drifted level. The
// whole loop runs on one goroutine over a virtual clock, so the Report (and
// its Transcript/Digest) is a pure function of cfg.
//
// RunDrift returns a non-nil error when any invariant was violated; the
// Report is always valid for inspection.
func RunDrift(cfg DriftConfig) (*DriftReport, error) {
	cfg.defaults()

	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "apollo-drift-*")
		if err != nil {
			return nil, fmt.Errorf("drift: temp dir: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	model := cfg.Model
	if model == nil {
		m, err := TrainDriftModel(cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("drift: training delphi: %w", err)
		}
		model = m
	}

	start := time.Unix(0, 0)
	clock := sim.NewVirtual(start)
	trace := driftTrace(cfg)

	svc := core.New(core.Config{
		Clock:          clock,
		Delphi:         model,
		DelphiBatch:    2,
		DelphiRegistry: dir,
		DelphiRetrain:  time.Minute,
		HistorySize:    512,
	})
	defer svc.Stop()

	v, err := svc.RegisterMetric(&score.ReplayHook{ID: DriftMetric, Trace: trace})
	if err != nil {
		return nil, fmt.Errorf("drift: register: %w", err)
	}
	tr := svc.DelphiTrainer()
	if tr == nil {
		return nil, fmt.Errorf("drift: trainer not created")
	}

	rep := &DriftReport{TripPoll: -1}
	fail := func(format string, args ...any) {
		rep.Violations = append(rep.Violations, fmt.Sprintf(format, args...))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "drift-scenario seed=%d phases=%d/%d/%d tick=%s\n",
		cfg.Seed, cfg.PhaseA, cfg.PhaseB, cfg.Recovery, cfg.BaseTick)

	// forecast reads the class sweep's prediction for DriftMetric before the
	// next measurement lands; ok is false while the window warms or the
	// vertex is in measured-only fallback.
	forecast := func() (float64, bool) {
		for _, r := range svc.PredictAll() {
			if r.Metric == DriftMetric {
				return r.Value, r.OK
			}
		}
		return 0, false
	}

	var preSum, shiftSum, recSum float64
	var preN, shiftN, recN int
	poll := func(i int, phase string, sum *float64, n *int) {
		pred, ok := forecast()
		measured := trace[i]
		v.PollOnce()
		elapsed := clock.Now().Sub(start)
		if ok {
			err := math.Abs(pred - measured)
			*sum += err
			*n++
			fmt.Fprintf(&b, "t=%s %s i=%d value=%.4f pred=%.4f err=%.4f\n",
				elapsed, phase, i, measured, pred, err)
		} else {
			rep.Suppressed++
			fmt.Fprintf(&b, "t=%s %s i=%d value=%.4f pred=suppressed\n",
				elapsed, phase, i, measured)
		}
		if rep.TripPoll < 0 && tr.Pending() > 0 {
			rep.TripPoll = i
			fmt.Fprintf(&b, "t=%s drift trip poll=%d class=%s\n", elapsed, i, DriftClass)
		}
		clock.Advance(cfg.BaseTick)
	}

	for i := 0; i < cfg.PhaseA; i++ {
		poll(i, "pre", &preSum, &preN)
	}
	if rep.TripPoll >= 0 {
		fail("false positive: detector tripped at poll %d, inside the stable phase", rep.TripPoll)
	}
	for i := cfg.PhaseA; i < cfg.PhaseA+cfg.PhaseB; i++ {
		poll(i, "shift", &shiftSum, &shiftN)
	}
	if rep.TripPoll < 0 {
		fail("detector never tripped across %d shifted polls", cfg.PhaseB)
	}
	if _, ok := forecast(); ok {
		fail("forecast still published after the trip: fallback not engaged")
	}

	// Synchronous retrain pass: deterministic scenarios drive the trainer
	// directly instead of waiting out the background cadence.
	rep.Event = tr.RunOnce(DriftClass)
	rep.PromotedVersion = svc.ModelVersion(DriftClass)
	fmt.Fprintf(&b, "retrain class=%s kind=%d version=%d base=%.6f cand=%.6f improved=%t err=%v\n",
		rep.Event.Class, rep.Event.Kind, rep.PromotedVersion,
		rep.Event.Report.BaseRMSE, rep.Event.Report.CandidateRMSE,
		rep.Event.Report.Improved, rep.Event.Err)
	if rep.Event.Kind != registry.EventPromoted {
		fail("retrain outcome kind=%d err=%v, want promotion", rep.Event.Kind, rep.Event.Err)
	}
	if rep.PromotedVersion != 1 {
		fail("class version %d after first promotion, want 1", rep.PromotedVersion)
	}

	for i := cfg.PhaseA + cfg.PhaseB; i < len(trace); i++ {
		poll(i, "recover", &recSum, &recN)
	}

	mean := func(sum float64, n int) float64 {
		if n == 0 {
			return math.NaN()
		}
		return sum / float64(n)
	}
	rep.PreShiftErr = mean(preSum, preN)
	rep.ShiftErr = mean(shiftSum, shiftN)
	rep.RecoveredErr = mean(recSum, recN)

	if preN == 0 {
		fail("no forecasts published in the stable phase")
	}
	if shiftN == 0 {
		fail("no forecasts published between the shift and the trip")
	}
	if recN == 0 {
		fail("no forecasts published after the promotion: fallback never lifted")
	}
	if recN > 0 && shiftN > 0 && !(rep.RecoveredErr < rep.ShiftErr) {
		fail("error did not recover: shifted=%.4f recovered=%.4f", rep.ShiftErr, rep.RecoveredErr)
	}

	fmt.Fprintf(&b, "end trip=%d version=%d pre=%.4f shift=%.4f recovered=%.4f suppressed=%d violations=%d\n",
		rep.TripPoll, rep.PromotedVersion, rep.PreShiftErr, rep.ShiftErr,
		rep.RecoveredErr, rep.Suppressed, len(rep.Violations))
	for _, vio := range rep.Violations {
		fmt.Fprintf(&b, "violation %s\n", vio)
	}

	rep.Transcript = b.String()
	sum := sha256.Sum256([]byte(rep.Transcript))
	rep.Digest = hex.EncodeToString(sum[:])

	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("drift: %d invariant violation(s); first: %s", len(rep.Violations), rep.Violations[0])
	}
	return rep, nil
}
