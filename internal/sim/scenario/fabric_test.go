package scenario

import (
	"strings"
	"testing"
	"time"
)

// TestFabricScenarioReproducible is the acceptance gate for the replicated
// fabric: a seeded scenario kills per-topic leaders mid-stream (plus a
// partition, a fencing probe, a double failover, and a chaos phase), the
// invariant audit proves zero acked-tuple loss and monotone IDs on every
// replica, and two runs of the same seed produce byte-identical transcripts.
// Replay a failure with -sim.seed=N.
func TestFabricScenarioReproducible(t *testing.T) {
	cfg := FabricConfig{Seed: *simSeed}

	wall0 := time.Now()
	a, err := RunFabric(cfg)
	if err != nil {
		t.Fatalf("run A: %v\ntranscript:\n%s", err, a.Transcript)
	}
	b, err := RunFabric(cfg)
	if err != nil {
		t.Fatalf("run B: %v\ntranscript:\n%s", err, b.Transcript)
	}
	wall := time.Since(wall0)

	if a.Digest != b.Digest || a.Transcript != b.Transcript {
		t.Fatalf("same seed diverged: %s vs %s\n--- A ---\n%s\n--- B ---\n%s",
			a.Digest, b.Digest, a.Transcript, b.Transcript)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("invariant violations: %v", a.Violations)
	}
	if a.Acked == 0 || a.Entries == 0 {
		t.Fatalf("producer never got an ack: %+v", a)
	}
	if a.Failovers < 3 {
		t.Fatalf("failovers = %d, want >= 3 (leader kill + double failover):\n%s", a.Failovers, a.Transcript)
	}
	if a.Fenced == 0 {
		t.Fatalf("no stale-leader publish was epoch-fenced:\n%s", a.Transcript)
	}
	if a.Redirects == 0 {
		t.Fatalf("producer followed no not-leader redirects:\n%s", a.Transcript)
	}
	if wall > 5*time.Second {
		t.Fatalf("two runs took %v wall clock, want < 5s", wall)
	}
	for _, marker := range []string{"phase leader-kill", "phase partition", "phase fence", "phase double-failover", "phase chaos"} {
		if !strings.Contains(a.Transcript, marker) {
			t.Fatalf("transcript missing %q:\n%s", marker, a.Transcript)
		}
	}
	t.Logf("seed=%d digest=%s acked=%d entries=%d failovers=%d fenced=%d redirects=%d noquorum=%d wall=%v",
		cfg.Seed, a.Digest, a.Acked, a.Entries, a.Failovers, a.Fenced, a.Redirects, a.NoQuorum, wall)
}

// TestFabricScenarioSeedsDiverge guards against the fabric scenario ignoring
// its seed: different seeds must produce different transcripts.
func TestFabricScenarioSeedsDiverge(t *testing.T) {
	a, err := RunFabric(FabricConfig{Seed: 1})
	if err != nil {
		t.Fatalf("seed 1: %v\n%s", err, a.Transcript)
	}
	b, err := RunFabric(FabricConfig{Seed: 2})
	if err != nil {
		t.Fatalf("seed 2: %v\n%s", err, b.Transcript)
	}
	if a.Digest == b.Digest {
		t.Fatalf("seeds 1 and 2 produced identical transcripts (digest %s)", a.Digest)
	}
}
