package scenario

import (
	"fmt"
	"time"

	"repro/internal/score"
)

// invariants accumulates violations of the pipeline's safety properties
// while a scenario runs. Violations are appended to the transcript and
// surfaced in Report.Violations, so a broken invariant is both machine- and
// diff-visible.
type invariants struct {
	violations []string
}

func (iv *invariants) failf(format string, args ...interface{}) {
	iv.violations = append(iv.violations, fmt.Sprintf(format, args...))
}

// checkMonotoneID enforces strictly-increasing per-topic entry IDs as seen by
// the consumer (the broker assigns contiguous IDs; any regression means
// reordering or replay without dedup).
func (iv *invariants) checkMonotoneID(topic string, last, got uint64) {
	if got <= last {
		iv.failf("monotone-id: topic %s delivered id %d after %d", topic, got, last)
	}
}

// checkInterval enforces the AIMD bound: every interval the controller hands
// the vertex stays inside [min, max].
func (iv *invariants) checkInterval(d, min, max time.Duration) {
	if d < min || d > max {
		iv.failf("aimd-bounds: interval %v outside [%v, %v]", d, min, max)
	}
}

// healthTracker enforces legal publish-path health transitions:
//
//	OK       -> Degraded            (first error or backlog)
//	Degraded -> OK | Failed         (recovery, or FailAfter consecutive errors)
//	Failed   -> OK | Degraded       (recovery; Degraded while a backlog drains)
//
// OK -> Failed without passing through Degraded is illegal whenever
// FailAfter > 1: the error streak must grow one publish at a time.
type healthTracker struct {
	name string
	last score.HealthState
	iv   *invariants
	// transitions records each state change as "old>new" for the transcript.
	transitions []string
}

func newHealthTracker(name string, iv *invariants) *healthTracker {
	return &healthTracker{name: name, last: score.HealthOK, iv: iv}
}

// observe feeds one health snapshot; it returns true when the state changed.
func (h *healthTracker) observe(s score.HealthState) bool {
	if s == h.last {
		return false
	}
	if h.last == score.HealthOK && s == score.HealthFailed {
		h.iv.failf("health-transition: %s jumped ok -> failed", h.name)
	}
	h.transitions = append(h.transitions, fmt.Sprintf("%s>%s", h.last, s))
	h.last = s
	return true
}

// checkAckedRetention compares the number of tuples the publish path accepted
// (delivered or buffered, i.e. "acked" to the producer) against the number
// retrievable end-to-end from the vertex's history+archive merge: once acked,
// a tuple may be delayed but never lost.
func (iv *invariants) checkAckedRetention(name string, acked, retrievable uint64) {
	if retrievable < acked {
		iv.failf("acked-loss: %s accepted %d tuples but only %d retrievable", name, acked, retrievable)
	}
}
