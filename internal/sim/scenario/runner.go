package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/adaptive"
	"repro/internal/aqe"
	"repro/internal/archive"
	"repro/internal/delphi"
	"repro/internal/score"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// AIMD bounds used by every scenario; the runner asserts each interval the
// controller hands back stays inside them.
const (
	aimdMin = 1 * time.Second
	aimdMax = 8 * time.Second
)

// Metric names of the simulated DAG.
const (
	FactMetric    = "sim.capacity"
	InsightMetric = "sim.capacity.insight"
)

// slowDiskLatency is the virtual time one hook poll burns while a SlowDisk
// fault window is active.
const slowDiskLatency = 50 * time.Millisecond

// Config parameterizes a deterministic end-to-end scenario. Everything that
// shapes behavior derives from Seed, so two Runs with equal Config produce
// byte-identical transcripts.
type Config struct {
	// Seed drives the fault schedule, the workload, and (when Model is nil)
	// Delphi training.
	Seed int64
	// Faults is how many fault events the schedule carries (default 6).
	Faults int
	// Horizon is the virtual duration of the run (default 3m).
	Horizon time.Duration
	// BaseTick is the discrete-event step and the Delphi fill-in resolution
	// (default 1s).
	BaseTick time.Duration
	// Dir hosts the archive segments; empty means a private temp dir removed
	// after the run (the transcript never mentions paths).
	Dir string
	// Model is the Delphi model to predict with; nil trains a small model
	// from Seed (slower — share one across runs when comparing digests).
	Model *delphi.Model
}

func (c *Config) defaults() {
	if c.Faults <= 0 {
		c.Faults = 6
	}
	if c.Horizon <= 0 {
		c.Horizon = 3 * time.Minute
	}
	if c.BaseTick <= 0 {
		c.BaseTick = time.Second
	}
}

// Report is the outcome of one scenario run. Transcript is the replayable
// artifact: re-running with the same Config reproduces it byte for byte, and
// Digest is its sha256 (the one-line fingerprint to compare across runs).
type Report struct {
	Schedule   sim.Schedule
	Transcript string
	Digest     string

	Polls     uint64 // hook polls executed
	Facts     uint64 // measured facts accepted by the publish path
	Predicted uint64 // Delphi fill-in facts accepted
	Insights  uint64 // insights accepted
	Archived  uint64 // tuples evicted into the archives
	Injected  uint64 // bus operations failed or delayed by the schedule
	Applied   int    // schedule events applied

	// Violations lists broken pipeline invariants (empty on a healthy run).
	Violations []string
	// Elapsed is how much virtual time the run covered.
	Elapsed time.Duration
}

// TrainQuickModel trains the small deterministic Delphi model scenarios use
// when Config.Model is nil. Exposed so tests can train once and share it
// across runs.
func TrainQuickModel(seed int64) (*delphi.Model, error) {
	return delphi.Train(delphi.TrainOptions{
		SeriesPerFeature: 2, SeriesLen: 64, Epochs: 3, Noise: 0.2, Seed: seed,
	})
}

// Run executes one deterministic scenario: a sampler hook polled by a Fact
// Vertex at an AIMD-adapted interval, Delphi predictions filling skipped
// ticks, an Insight Vertex deriving from the fact stream, archives absorbing
// queue evictions, faults injected from the seeded schedule, and a final
// query pass over the AQE. The whole pipeline runs synchronously on one
// goroutine over a virtual clock, so the returned Report (and in particular
// its Transcript/Digest) is a pure function of cfg.
//
// Run returns the Report together with a non-nil error when any pipeline
// invariant was violated; the Report is always valid for inspection.
func Run(cfg Config) (*Report, error) {
	cfg.defaults()

	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "apollo-sim-*")
		if err != nil {
			return nil, fmt.Errorf("scenario: temp dir: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	model := cfg.Model
	if model == nil {
		m, err := TrainQuickModel(cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("scenario: training delphi: %w", err)
		}
		model = m
	}

	start := time.Unix(0, 0)
	clock := sim.NewVirtual(start)
	schedule := sim.Generate(cfg.Seed, cfg.Faults, cfg.Horizon)

	broker := stream.NewBroker(0)
	defer broker.Close()
	bus := newFaultBus(broker, clock)

	factLog, err := archive.Open(filepath.Join(dir, "fact"), archive.Options{})
	if err != nil {
		return nil, err
	}
	defer factLog.Close()

	ctrl, err := adaptive.NewSimpleAIMD(adaptive.Config{
		Initial: aimdMin, Min: aimdMin, Max: aimdMax,
		AdditiveStep: time.Second, MultiplicativeFactor: 2, Threshold: 0.5, Window: 1,
	})
	if err != nil {
		return nil, err
	}

	// The workload is a seeded random walk: stable stretches let AIMD relax
	// the interval (opening gaps for Delphi to fill), bursts snap it back.
	wl := rand.New(rand.NewSource(cfg.Seed ^ 0x5eedface))
	value := 100.0
	var slowUntil time.Time
	hook := score.HookFunc{
		ID: FactMetric,
		Fn: func() (float64, error) {
			if clock.Now().Before(slowUntil) {
				clock.Advance(slowDiskLatency) // a slow disk burns poll time
			}
			if wl.Float64() < 0.35 {
				value += (wl.Float64() - 0.5) * 8
			}
			return value, nil
		},
	}

	fv, err := score.NewFactVertex(score.FactConfig{
		Hook:        hook,
		Bus:         bus,
		Controller:  ctrl,
		Clock:       clock,
		HistorySize: 32, // small window forces evictions into the archive
		Archive:     factLog,
		Delphi:      delphi.NewOnline(model),
		BaseTick:    cfg.BaseTick,
		FailAfter:   3,
	})
	if err != nil {
		return nil, err
	}
	insight, err := score.NewInsightVertex(score.InsightConfig{
		Metric:  InsightMetric,
		Inputs:  []telemetry.MetricID{FactMetric},
		Builder: score.Sum,
		Bus:     bus,
		Clock:   clock,
		// Insight timestamps are not monotone (predicted inputs carry future
		// stamps), so keep the whole stream in history: the history+archive
		// merge is only exact for monotone eviction order.
		HistorySize: 4096,
		FailAfter:   3,
	})
	if err != nil {
		return nil, err
	}

	graph := score.NewGraph()
	if err := graph.RegisterFact(fv); err != nil {
		return nil, err
	}
	if err := graph.RegisterInsight(insight); err != nil {
		return nil, err
	}
	engine := aqe.NewEngine(aqe.GraphResolver{Graph: graph})

	inv := &invariants{}
	factHealth := newHealthTracker("fact", inv)
	insHealth := newHealthTracker("insight", inv)

	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s horizon=%s tick=%s\n", schedule, cfg.Horizon, cfg.BaseTick)

	ctx := context.Background()
	rep := &Report{Schedule: schedule}
	nextPoll := start
	var lastFactID, lastInsID uint64
	evIdx := 0

	for {
		now := clock.Now()
		elapsed := now.Sub(start)
		if elapsed > cfg.Horizon {
			break
		}

		// Arm every schedule event that has come due.
		for evIdx < len(schedule.Events) && schedule.Events[evIdx].At <= elapsed {
			e := schedule.Events[evIdx]
			fmt.Fprintf(&b, "t=%s fault %s %s\n", elapsed, e.Kind, e.Duration)
			if e.Kind == sim.SlowDisk {
				slowUntil = now.Add(e.Duration)
			} else {
				bus.apply(e, now)
			}
			rep.Applied++
			evIdx++
		}

		// Poll when the AIMD deadline arrives.
		if !now.Before(nextPoll) {
			next := fv.PollOnce()
			inv.checkInterval(next, aimdMin, aimdMax)
			st := fv.Stats()
			h := fv.Health()
			fmt.Fprintf(&b, "t=%s poll value=%.4f next=%s published=%d predicted=%d buffered=%d health=%s\n",
				elapsed, value, next, st.Published, st.Predicted, h.Buffered, h.State)
			nextPoll = now.Add(next)
		}

		// Feed freshly published facts to the insight vertex through the
		// fault bus: a partition delays consumption but never loses tuples.
		if entries, rerr := bus.Range(ctx, FactMetric, lastFactID+1, 1<<62, 0); rerr != nil {
			fmt.Fprintf(&b, "t=%s read-fault %s\n", elapsed, rerr)
		} else {
			for _, e := range entries {
				inv.checkMonotoneID(FactMetric, lastFactID, e.ID)
				lastFactID = e.ID
				var in telemetry.Info
				if uerr := in.UnmarshalBinary(e.Payload); uerr != nil {
					inv.failf("decode: fact id %d: %v", e.ID, uerr)
					continue
				}
				fmt.Fprintf(&b, "t=%s fact id=%d ts=%d value=%.4f src=%s\n",
					elapsed, e.ID, in.Timestamp, in.Value, in.Source)
				insight.ConsumeOnce(e)
			}
		}

		// Record the insights that landed (read directly: transcript only).
		if entries, rerr := broker.Range(ctx, InsightMetric, lastInsID+1, 1<<62, 0); rerr == nil {
			for _, e := range entries {
				inv.checkMonotoneID(InsightMetric, lastInsID, e.ID)
				lastInsID = e.ID
				var in telemetry.Info
				if uerr := in.UnmarshalBinary(e.Payload); uerr != nil {
					inv.failf("decode: insight id %d: %v", e.ID, uerr)
					continue
				}
				fmt.Fprintf(&b, "t=%s insight id=%d value=%.4f src=%s\n", elapsed, e.ID, in.Value, in.Source)
			}
		}

		if factHealth.observe(fv.Health().State) {
			fmt.Fprintf(&b, "t=%s health fact=%s\n", elapsed, fv.Health().State)
		}
		if insHealth.observe(insight.Health().State) {
			fmt.Fprintf(&b, "t=%s health insight=%s\n", elapsed, insight.Health().State)
		}

		clock.Advance(cfg.BaseTick)
	}

	// End-to-end retention check: every acked tuple must be retrievable from
	// the history+archive merge, measured and predicted alike.
	if err := factLog.Sync(); err != nil {
		return nil, err
	}
	var measured, predicted, insights uint64
	fv.ScanRange(-1<<62, 1<<62, func(in telemetry.Info) bool {
		if in.Source == telemetry.Measured {
			measured++
		} else {
			predicted++
		}
		return true
	})
	insight.ScanRange(-1<<62, 1<<62, func(telemetry.Info) bool { insights++; return true })
	fst := fv.Stats()
	ist := insight.Stats()
	inv.checkAckedRetention("fact(measured)", fst.Published, measured)
	inv.checkAckedRetention("fact(predicted)", fst.Predicted, predicted)
	inv.checkAckedRetention("insight", ist.Published, insights)

	// Query pass: the AQE answers over the same history+archive merge.
	for _, q := range []string{
		"SELECT COUNT(*), MIN(Timestamp), MAX(Timestamp) FROM " + FactMetric,
		"SELECT COUNT(*), AVG(metric) FROM " + InsightMetric,
	} {
		res, qerr := engine.Query(q)
		if qerr != nil {
			inv.failf("query: %s: %v", q, qerr)
			continue
		}
		cells := make([]string, 0, len(res.Columns))
		for _, row := range res.Rows {
			for _, c := range row {
				cells = append(cells, c.String())
			}
		}
		fmt.Fprintf(&b, "query %q -> [%s]\n", q, strings.Join(cells, " "))
	}

	rep.Polls = fst.Polls
	rep.Facts = fst.Published
	rep.Predicted = fst.Predicted
	rep.Insights = ist.Published
	rep.Archived = factLog.Appended()
	rep.Injected = bus.injected
	rep.Elapsed = clock.Now().Sub(start)
	rep.Violations = inv.violations

	fmt.Fprintf(&b, "end polls=%d facts=%d predicted=%d insights=%d archived=%d injected=%d applied=%d violations=%d\n",
		rep.Polls, rep.Facts, rep.Predicted, rep.Insights, rep.Archived, rep.Injected, rep.Applied, len(rep.Violations))
	for _, vio := range rep.Violations {
		fmt.Fprintf(&b, "violation %s\n", vio)
	}

	rep.Transcript = b.String()
	sum := sha256.Sum256([]byte(rep.Transcript))
	rep.Digest = hex.EncodeToString(sum[:])

	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("scenario: %d invariant violation(s); first: %s", len(rep.Violations), rep.Violations[0])
	}
	return rep, nil
}
