// Package scenario composes the sim layer with the real pipeline — sampler
// hook -> Fact Vertex -> Delphi -> Insight Vertex -> archive -> query — into
// seeded, fully deterministic end-to-end simulations. A Run drives every
// component synchronously on a single goroutine over a virtual clock, injects
// the faults of a sim.Schedule through a Bus wrapper, checks pipeline
// invariants while it goes, and returns a byte-for-byte reproducible
// transcript (plus its digest) as the replayable failure artifact.
package scenario

import (
	"context"
	"fmt"
	"syscall"
	"time"

	"repro/internal/sim"
	"repro/internal/stream"
)

// errInjected marks a scenario-injected transport fault; wrapping ECONNRESET
// makes stream.IsTransient report true, so the store-and-forward path treats
// it exactly like a real broker outage.
func errInjected(kind sim.FaultKind) error {
	return fmt.Errorf("sim: injected %s: %w", kind, syscall.ECONNRESET)
}

// faultBus wraps a stream.Bus and fails or delays operations according to
// the scenario's fault state. It is driven from the single scenario
// goroutine, so plain fields suffice; a BrokerStall advances the virtual
// clock directly (the synchronous stand-in for a blocked broker call).
type faultBus struct {
	inner stream.Bus
	clock *sim.Virtual

	// partitionUntil: while Now is before it, every operation fails with a
	// transient error (the vertex cannot reach the broker at all).
	partitionUntil time.Time
	// stallUntil: while Now is before it, operations succeed but first burn
	// stallLatency of virtual time (a slow, not dead, broker).
	stallUntil   time.Time
	stallLatency time.Duration
	// dropNext fails the next N publish operations (one-shot conn drops).
	dropNext int

	injected uint64 // operations failed or delayed by the scenario
}

const defaultStallLatency = 100 * time.Millisecond

func newFaultBus(inner stream.Bus, clock *sim.Virtual) *faultBus {
	return &faultBus{inner: inner, clock: clock, stallLatency: defaultStallLatency}
}

// apply arms the bus for one schedule event. SlowDisk is handled at the
// sampler hook, not here.
func (f *faultBus) apply(e sim.Event, now time.Time) {
	switch e.Kind {
	case sim.ConnDrop:
		f.dropNext++
	case sim.Partition:
		f.partitionUntil = now.Add(e.Duration)
	case sim.BrokerStall:
		f.stallUntil = now.Add(e.Duration)
	}
}

// gate applies the current fault state to one operation; a non-nil return
// means the operation fails without reaching the broker.
func (f *faultBus) gate(kind string) error {
	now := f.clock.Now()
	if f.dropNext > 0 && kind == "publish" {
		f.dropNext--
		f.injected++
		return errInjected(sim.ConnDrop)
	}
	if now.Before(f.partitionUntil) {
		f.injected++
		return errInjected(sim.Partition)
	}
	if now.Before(f.stallUntil) {
		f.injected++
		f.clock.Advance(f.stallLatency)
	}
	return nil
}

func (f *faultBus) Publish(ctx context.Context, topic string, payload []byte) (uint64, error) {
	if err := f.gate("publish"); err != nil {
		return 0, err
	}
	return f.inner.Publish(ctx, topic, payload)
}

func (f *faultBus) PublishBatch(ctx context.Context, topic string, payloads [][]byte) (uint64, error) {
	if err := f.gate("publish"); err != nil {
		return 0, err
	}
	return f.inner.PublishBatch(ctx, topic, payloads)
}

func (f *faultBus) Latest(ctx context.Context, topic string) (stream.Entry, error) {
	if err := f.gate("read"); err != nil {
		return stream.Entry{}, err
	}
	return f.inner.Latest(ctx, topic)
}

func (f *faultBus) Range(ctx context.Context, topic string, from, to uint64, max int) ([]stream.Entry, error) {
	if err := f.gate("read"); err != nil {
		return nil, err
	}
	return f.inner.Range(ctx, topic, from, to, max)
}

func (f *faultBus) Consume(ctx context.Context, topic string, afterID uint64) (stream.Entry, error) {
	if err := f.gate("read"); err != nil {
		return stream.Entry{}, err
	}
	return f.inner.Consume(ctx, topic, afterID)
}

func (f *faultBus) ConsumeBatch(ctx context.Context, topic string, afterID uint64, max int) ([]stream.Entry, error) {
	if err := f.gate("read"); err != nil {
		return nil, err
	}
	return f.inner.ConsumeBatch(ctx, topic, afterID, max)
}

func (f *faultBus) Subscribe(ctx context.Context, topic string, afterID uint64) (<-chan stream.Entry, error) {
	// The synchronous scenario never subscribes; delegate for completeness.
	return f.inner.Subscribe(ctx, topic, afterID)
}

var _ stream.Bus = (*faultBus)(nil)
