package scenario

import (
	"flag"
	"testing"
)

var (
	gatewaySubs   = flag.Int("gateway.subs", 400, "gateway scenario subscriber count")
	gatewayTuples = flag.Int("gateway.tuples", 256, "gateway scenario tuple count")
	gatewayQueue  = flag.Int("gateway.queue", 64, "gateway scenario per-subscriber queue bound")
)

// TestGatewayScenario proves the public edge's backpressure contract at
// moderate fan-out (the 10k-subscriber configuration runs from
// scripts/bench_gateway.sh): zero acked-tuple loss for well-behaved
// subscribers, guaranteed eviction for slow ones, bounded heap.
func TestGatewayScenario(t *testing.T) {
	cfg := GatewayConfig{
		Seed:         42,
		Subscribers:  *gatewaySubs,
		SlowFraction: 0.1,
		Tuples:       *gatewayTuples,
		Queue:        *gatewayQueue,
	}
	rep, err := RunGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantWell := cfg.Subscribers - rep.Slow
	if rep.Evicted != rep.Slow {
		t.Errorf("evicted %d of %d slow subscribers", rep.Evicted, rep.Slow)
	}
	if want := uint64(wantWell) * uint64(cfg.Tuples); rep.Delivered != want {
		t.Errorf("delivered %d frames, want %d (zero loss)", rep.Delivered, want)
	}
	// Bounded memory: a generous fixed budget per subscriber plus a base
	// allowance — the point is queues don't grow with published volume.
	budget := uint64(cfg.Subscribers)*64<<10 + 128<<20
	if rep.HeapBytes > budget {
		t.Errorf("heap %d bytes exceeds budget %d", rep.HeapBytes, budget)
	}
	t.Logf("subs=%d slow=%d tuples=%d delivered=%d evicted=%d heap=%dKB elapsed=%s",
		rep.Subscribers, rep.Slow, rep.Tuples, rep.Delivered, rep.Evicted, rep.HeapBytes>>10, rep.Elapsed)
}

// TestGatewayScenarioSeeded checks the slow-set placement is a pure
// function of the seed: two runs with the same seed evict the same count,
// and the report shape is reproducible.
func TestGatewayScenarioSeeded(t *testing.T) {
	cfg := GatewayConfig{Seed: 7, Subscribers: 50, SlowFraction: 0.2, Tuples: 96, Queue: 32}
	a, err := RunGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Elapsed, b.Elapsed = 0, 0
	a.HeapBytes, b.HeapBytes = 0, 0
	if a != b {
		t.Fatalf("same seed, different outcome:\n%+v\n%+v", a, b)
	}
}
