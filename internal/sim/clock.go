// Package sim is Apollo's deterministic simulation layer: an injectable
// Clock abstraction (wall and virtual implementations) plus seeded fault
// schedules (schedule.go) that let the whole Fact -> Delphi -> Insight ->
// archive -> query pipeline run on virtual time. Time- and failure-dependent
// behavior — AIMD interval adaptation (§3.4.1), DAG propagation (§3.2),
// reconnect backoff, store-and-forward recovery — becomes replayable from a
// single seed instead of racing wall clocks, the same reason related storage
// failure-detection work validates against a simulator rather than live
// hardware.
//
// sim sits below every other internal package (it imports only the standard
// library): sched, stream, score, and ldms accept a sim.Clock, and
// sim/scenario composes them into end-to-end virtual-time scenarios.
package sim

import "time"

// Clock abstracts time for the pipeline. Wall is the production
// implementation; Virtual is manually advanced for deterministic tests and
// replay. Clock is a superset of sched.Clock, so any Clock drives the timer
// event loop too.
type Clock interface {
	// Now returns the current (wall or virtual) time.
	Now() time.Time
	// Sleep blocks until d has elapsed on this clock.
	Sleep(d time.Duration)
	// After returns a channel that delivers one tick after d.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a re-armable timer, mirroring time.NewTimer.
	NewTimer(d time.Duration) *Timer
}

// Timer mirrors time.Timer across wall and virtual clocks: C delivers at
// most one tick per arming, Stop and Reset follow time.Timer semantics.
type Timer struct {
	C    <-chan time.Time
	impl timerImpl
}

type timerImpl interface {
	Stop() bool
	Reset(d time.Duration) bool
}

// Stop disarms the timer, reporting whether it was still pending. It does
// not drain C; use the usual Stop-then-drain idiom.
func (t *Timer) Stop() bool { return t.impl.Stop() }

// Reset re-arms the timer to fire after d, reporting whether it was still
// pending. Like time.Timer.Reset it should only be called on stopped or
// fired timers with a drained channel.
func (t *Timer) Reset(d time.Duration) bool { return t.impl.Reset(d) }

// Wall is the wall-clock Clock used in production.
type Wall struct{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Wall) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Wall) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTimer implements Clock.
func (Wall) NewTimer(d time.Duration) *Timer {
	t := time.NewTimer(d)
	return &Timer{C: t.C, impl: wallTimer{t}}
}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) Stop() bool                 { return w.t.Stop() }
func (w wallTimer) Reset(d time.Duration) bool { return w.t.Reset(d) }

// Or returns c, or Wall when c is nil — the idiom every config that embeds
// an optional Clock uses to default.
func Or(c Clock) Clock {
	if c == nil {
		return Wall{}
	}
	return c
}
