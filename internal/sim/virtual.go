package sim

import (
	"sort"
	"sync"
	"time"
)

// Virtual is a manually-advanced Clock for deterministic tests and for
// replaying captured workloads (the paper replays HACC traces "so that there
// would be minimal issues with time drift or interference between runs",
// §4.3.1). Advance moves virtual time forward, delivering pending ticks in
// deadline order (registration order breaks ties, so a given schedule always
// fires the same way). It supersedes the old sched.SimClock, which is now an
// alias of this type.
type Virtual struct {
	mu       sync.Mutex
	now      time.Time
	seq      uint64
	waiters  []*vwaiter
	watchers []*watcher
}

// vwaiter is one pending tick: a one-shot After channel or an armed Timer.
type vwaiter struct {
	when  time.Time
	seq   uint64
	ch    chan time.Time
	timer bool // re-armable Timer entries use non-blocking sends
}

// watcher is one BlockUntil registration.
type watcher struct {
	n  int
	ch chan struct{}
}

// NewVirtual returns a virtual clock starting at start.
func NewVirtual(start time.Time) *Virtual { return &Virtual{now: start} }

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel fires when virtual time
// reaches now+d via Advance; d <= 0 fires immediately.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	when := v.now.Add(d)
	if d <= 0 {
		ch <- when
		return ch
	}
	v.addWaiterLocked(&vwaiter{when: when, ch: ch})
	return ch
}

// Sleep implements Clock: it blocks until another goroutine advances the
// clock past now+d. Sleeping on a Virtual clock from the same goroutine that
// advances it deadlocks — single-threaded simulations advance instead.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// NewTimer implements Clock.
func (v *Virtual) NewTimer(d time.Duration) *Timer {
	ch := make(chan time.Time, 1)
	vt := &vtimer{clock: v, ch: ch}
	v.mu.Lock()
	vt.arm(d)
	v.mu.Unlock()
	return &Timer{C: ch, impl: vt}
}

// addWaiterLocked inserts w keeping (when, seq) order and wakes watchers.
func (v *Virtual) addWaiterLocked(w *vwaiter) {
	v.seq++
	w.seq = v.seq
	v.waiters = append(v.waiters, w)
	sort.SliceStable(v.waiters, func(i, j int) bool {
		if !v.waiters[i].when.Equal(v.waiters[j].when) {
			return v.waiters[i].when.Before(v.waiters[j].when)
		}
		return v.waiters[i].seq < v.waiters[j].seq
	})
	for i := 0; i < len(v.watchers); {
		if len(v.waiters) >= v.watchers[i].n {
			close(v.watchers[i].ch)
			v.watchers = append(v.watchers[:i], v.watchers[i+1:]...)
			continue
		}
		i++
	}
}

// removeWaiterLocked unlinks w, reporting whether it was still pending.
func (v *Virtual) removeWaiterLocked(w *vwaiter) bool {
	for i, cand := range v.waiters {
		if cand == w {
			v.waiters = append(v.waiters[:i], v.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// Advance moves virtual time forward by d, firing due waiters in deadline
// order.
func (v *Virtual) Advance(d time.Duration) { v.AdvanceTo(v.Now().Add(d)) }

// AdvanceTo moves virtual time to target (no-op when target is not after
// now), firing due waiters in deadline order.
func (v *Virtual) AdvanceTo(target time.Time) {
	v.mu.Lock()
	if target.Before(v.now) {
		v.mu.Unlock()
		return
	}
	v.now = target
	var due []*vwaiter
	i := 0
	for ; i < len(v.waiters); i++ {
		if v.waiters[i].when.After(target) {
			break
		}
		due = append(due, v.waiters[i])
	}
	v.waiters = v.waiters[i:]
	v.mu.Unlock()
	for _, w := range due {
		if w.timer {
			// time.Timer semantics: at most one buffered tick, never block.
			select {
			case w.ch <- w.when:
			default:
			}
			continue
		}
		w.ch <- w.when
	}
}

// Step advances the clock to the earliest pending deadline, firing it. It
// reports false (advancing nothing) when no waiter is pending — the
// event-loop primitive of single-threaded simulations.
func (v *Virtual) Step() bool {
	next, ok := v.NextDeadline()
	if !ok {
		return false
	}
	v.AdvanceTo(next)
	return true
}

// NextDeadline returns the earliest pending tick deadline.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.waiters) == 0 {
		return time.Time{}, false
	}
	return v.waiters[0].when, true
}

// PendingWaiters returns how many ticks (After channels and armed timers)
// have not yet fired.
func (v *Virtual) PendingWaiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters)
}

// BlockUntil returns a channel that closes once at least n ticks are
// pending. Tests use it instead of time.Sleep to know a goroutine under test
// has parked on the clock before advancing it.
func (v *Virtual) BlockUntil(n int) <-chan struct{} {
	ch := make(chan struct{})
	v.mu.Lock()
	if len(v.waiters) >= n {
		v.mu.Unlock()
		close(ch)
		return ch
	}
	v.watchers = append(v.watchers, &watcher{n: n, ch: ch})
	v.mu.Unlock()
	return ch
}

// vtimer is the Virtual implementation behind Clock.NewTimer.
type vtimer struct {
	clock *Virtual
	ch    chan time.Time

	w *vwaiter // current arming; nil when stopped/fired
}

// arm registers a fresh waiter; caller holds clock.mu.
func (t *vtimer) arm(d time.Duration) {
	w := &vwaiter{when: t.clock.now.Add(d), ch: t.ch, timer: true}
	t.w = w
	if d <= 0 {
		select {
		case t.ch <- w.when:
		default:
		}
		t.w = nil
		return
	}
	t.clock.addWaiterLocked(w)
}

// Stop implements Timer.
func (t *vtimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.w == nil {
		return false
	}
	pending := t.clock.removeWaiterLocked(t.w)
	t.w = nil
	return pending
}

// Reset implements Timer.
func (t *vtimer) Reset(d time.Duration) bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	pending := false
	if t.w != nil {
		pending = t.clock.removeWaiterLocked(t.w)
	}
	t.arm(d)
	return pending
}
