package sim

import (
	"testing"
	"time"
)

func TestVirtualAfterFiresInOrder(t *testing.T) {
	c := NewVirtual(time.Unix(0, 0))
	a := c.After(3 * time.Second)
	b := c.After(time.Second)
	if got := c.PendingWaiters(); got != 2 {
		t.Fatalf("pending=%d want 2", got)
	}
	c.Advance(2 * time.Second)
	select {
	case ts := <-b:
		if ts != time.Unix(1, 0) {
			t.Fatalf("tick at %v want 1s", ts)
		}
	default:
		t.Fatal("1s waiter did not fire after Advance(2s)")
	}
	select {
	case <-a:
		t.Fatal("3s waiter fired early")
	default:
	}
	c.Advance(time.Second)
	if _, ok := <-a; !ok {
		t.Fatal("3s waiter never fired")
	}
	if got := c.PendingWaiters(); got != 0 {
		t.Fatalf("pending=%d want 0", got)
	}
}

func TestVirtualAfterImmediate(t *testing.T) {
	c := NewVirtual(time.Unix(100, 0))
	select {
	case ts := <-c.After(0):
		if !ts.Equal(time.Unix(100, 0)) {
			t.Fatalf("tick=%v", ts)
		}
	default:
		t.Fatal("After(0) must fire immediately")
	}
}

func TestVirtualSleepBlocksUntilAdvance(t *testing.T) {
	c := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		c.Sleep(5 * time.Second)
		close(done)
	}()
	<-c.BlockUntil(1) // sleeper parked
	select {
	case <-done:
		t.Fatal("Sleep returned before Advance")
	default:
	}
	c.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep never woke")
	}
}

func TestVirtualTimerStopResetSemantics(t *testing.T) {
	c := NewVirtual(time.Unix(0, 0))
	tm := c.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer must report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop must report false")
	}
	c.Advance(2 * time.Second)
	select {
	case <-tm.C:
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Reset(time.Second) {
		t.Fatal("Reset on stopped timer must report false")
	}
	c.Advance(time.Second)
	select {
	case ts := <-tm.C:
		if !ts.Equal(time.Unix(3, 0)) {
			t.Fatalf("tick=%v want 3s", ts)
		}
	default:
		t.Fatal("reset timer did not fire")
	}
	// A fired timer re-arms; a second fire without drain never blocks Advance.
	tm.Reset(time.Second)
	tm.Reset(time.Second) // re-arm twice without draining
	c.Advance(time.Second)
	c.Advance(time.Second)
	<-tm.C
}

func TestVirtualStepAndNextDeadline(t *testing.T) {
	c := NewVirtual(time.Unix(0, 0))
	if c.Step() {
		t.Fatal("Step with no waiters must report false")
	}
	ch := c.After(7 * time.Second)
	when, ok := c.NextDeadline()
	if !ok || !when.Equal(time.Unix(7, 0)) {
		t.Fatalf("NextDeadline=%v ok=%v", when, ok)
	}
	if !c.Step() {
		t.Fatal("Step must advance to the pending deadline")
	}
	if !c.Now().Equal(time.Unix(7, 0)) {
		t.Fatalf("now=%v want 7s", c.Now())
	}
	select {
	case <-ch:
	default:
		t.Fatal("Step did not fire the waiter")
	}
}

func TestVirtualAdvanceToPastIsNoop(t *testing.T) {
	c := NewVirtual(time.Unix(100, 0))
	c.AdvanceTo(time.Unix(50, 0))
	if !c.Now().Equal(time.Unix(100, 0)) {
		t.Fatalf("now=%v, AdvanceTo must never rewind", c.Now())
	}
}

func TestScheduleGenerateDeterministic(t *testing.T) {
	a := Generate(42, 6, 5*time.Minute)
	b := Generate(42, 6, 5*time.Minute)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if len(a.Events) != 6 {
		t.Fatalf("events=%d want 6", len(a.Events))
	}
	for i, e := range a.Events {
		if i > 0 && e.At < a.Events[i-1].At {
			t.Fatalf("events not sorted: %s", a)
		}
		if e.At > 5*time.Minute {
			t.Fatalf("event past horizon: %s", e)
		}
		if e.Kind != ConnDrop && e.Duration <= 0 {
			t.Fatalf("window fault without duration: %s", e)
		}
	}
	if c := Generate(43, 6, 5*time.Minute); c.String() == a.String() {
		t.Fatalf("different seeds produced identical schedules: %s", c)
	}
}

func TestOrDefaultsToWall(t *testing.T) {
	if _, ok := Or(nil).(Wall); !ok {
		t.Fatal("Or(nil) must be Wall")
	}
	v := NewVirtual(time.Unix(0, 0))
	if Or(v) != Clock(v) {
		t.Fatal("Or must pass through non-nil clocks")
	}
}

func TestWallTimerRoundTrip(t *testing.T) {
	var c Clock = Wall{}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C:
	case <-time.After(2 * time.Second):
		t.Fatal("wall timer never fired")
	}
	tm.Reset(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop after Reset must report pending")
	}
	if c.Now().IsZero() {
		t.Fatal("wall Now")
	}
}
