package nn

import "math"

// Optimizer applies accumulated gradients to trainable layers.
type Optimizer interface {
	// Step updates parameters from gradients scaled by 1/batchSize, then
	// the caller is expected to zero the gradients.
	Step(layers []Layer, batchSize int)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*float64][]float64 // keyed by first element pointer
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*float64][]float64)}
}

// Step implements Optimizer.
func (s *SGD) Step(layers []Layer, batchSize int) {
	if batchSize < 1 {
		batchSize = 1
	}
	inv := 1.0 / float64(batchSize)
	for _, l := range layers {
		if !l.Trainable() {
			continue
		}
		params, grads := l.Params(), l.Grads()
		for pi := range params {
			p, g := params[pi], grads[pi]
			if len(p) == 0 {
				continue
			}
			if s.Momentum == 0 {
				for i := range p {
					p[i] -= s.LR * g[i] * inv
				}
				continue
			}
			v, ok := s.vel[&p[0]]
			if !ok {
				v = make([]float64, len(p))
				s.vel[&p[0]] = v
			}
			for i := range p {
				v[i] = s.Momentum*v[i] - s.LR*g[i]*inv
				p[i] += v[i]
			}
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*float64][]float64
}

// NewAdam returns Adam with the canonical defaults for any zero field.
func NewAdam(lr float64) *Adam {
	if lr == 0 {
		lr = 1e-3
	}
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*float64][]float64), v: make(map[*float64][]float64),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(layers []Layer, batchSize int) {
	if batchSize < 1 {
		batchSize = 1
	}
	inv := 1.0 / float64(batchSize)
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, l := range layers {
		if !l.Trainable() {
			continue
		}
		params, grads := l.Params(), l.Grads()
		for pi := range params {
			p, g := params[pi], grads[pi]
			if len(p) == 0 {
				continue
			}
			m, ok := a.m[&p[0]]
			if !ok {
				m = make([]float64, len(p))
				a.m[&p[0]] = m
			}
			v, ok := a.v[&p[0]]
			if !ok {
				v = make([]float64, len(p))
				a.v[&p[0]] = v
			}
			for i := range p {
				gi := g[i] * inv
				m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
				v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
				p[i] -= a.LR * (m[i] / c1) / (math.Sqrt(v[i]/c2) + a.Eps)
			}
		}
	}
}

var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)
