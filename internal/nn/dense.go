package nn

import "math"

// Dense is a fully-connected layer y = act(Wx + b). Setting Frozen marks the
// layer untrainable, which is how Delphi stacks its pre-trained feature
// models with fixed weights (§3.4.2).
type Dense struct {
	In, Out int
	W       []float64 // Out*In, row-major: W[o*In+i]
	B       []float64 // Out
	Act     Activation
	Frozen  bool

	gw, gb []float64 // gradient accumulators
	x      []float64 // cached input
	y      []float64 // cached activated output
}

// NewDense builds a dense layer with Glorot-uniform initialization from the
// given seed (deterministic for reproducibility).
func NewDense(in, out int, act Activation, seed int64) *Dense {
	if act == nil {
		act = Identity
	}
	d := &Dense{
		In: in, Out: out,
		W: make([]float64, out*in), B: make([]float64, out),
		Act: act,
		gw:  make([]float64, out*in), gb: make([]float64, out),
		y: make([]float64, out),
	}
	r := rng(seed)
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W {
		d.W[i] = (r.Float64()*2 - 1) * limit
	}
	return d
}

// Forward implements Layer. It caches input and output for Backward and
// returns a fresh slice; inference hot paths that need neither should call
// ForwardInto instead.
func (d *Dense) Forward(x []float64) []float64 {
	d.x = x
	d.ForwardInto(d.y, x)
	out := make([]float64, d.Out)
	copy(out, d.y)
	return out
}

// ForwardInto computes y = act(Wx + b) into dst without allocating and
// without touching the training caches, so it is safe for concurrent
// read-only inference over a frozen layer. dst must have length Out and may
// not alias x. The accumulation order is identical to Forward, so outputs
// are bit-identical.
func (d *Dense) ForwardInto(dst, x []float64) {
	if len(x) != d.In {
		panic(errDimension("dense input", len(x), d.In))
	}
	if len(dst) != d.Out {
		panic(errDimension("dense output", len(dst), d.Out))
	}
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		dst[o] = d.Act.Apply(sum)
	}
}

// Backward implements Layer.
func (d *Dense) Backward(dy []float64) []float64 {
	if len(dy) != d.Out {
		panic(errDimension("dense grad", len(dy), d.Out))
	}
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		dz := dy[o] * d.Act.DerivFromOutput(d.y[o])
		d.gb[o] += dz
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.gw[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += dz * d.x[i]
			dx[i] += dz * row[i]
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dense) Params() [][]float64 { return [][]float64{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() [][]float64 { return [][]float64{d.gw, d.gb} }

// ZeroGrads implements Layer.
func (d *Dense) ZeroGrads() {
	for i := range d.gw {
		d.gw[i] = 0
	}
	for i := range d.gb {
		d.gb[i] = 0
	}
}

// Trainable implements Layer.
func (d *Dense) Trainable() bool { return !d.Frozen }

// InSize implements Layer.
func (d *Dense) InSize() int { return d.In }

// OutSize implements Layer.
func (d *Dense) OutSize() int { return d.Out }

var _ Layer = (*Dense)(nil)
