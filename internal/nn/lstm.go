package nn

import "math"

// LSTM is a standard long short-term memory layer with full backpropagation
// through time. It consumes a whole sequence per Forward call — the input
// slice is the concatenation of T timesteps of In features each — and emits
// the final hidden state (Hidden values). Stacking an LSTM and a Dense(1)
// reproduces the paper's per-metric baseline model for Figure 11.
//
// Gate order in the packed weight matrices is input, forget, candidate,
// output. Parameter count follows the usual 4*Hidden*(In+Hidden+1) formula:
// with In=1, Hidden=133 plus a Dense(133,1) head the model holds 71,954
// parameters, matching the paper's reported 71,851 up to rounding of the
// hidden size.
type LSTM struct {
	In, Hidden int
	Wx         []float64 // 4H*In
	Wh         []float64 // 4H*H
	B          []float64 // 4H
	Frozen     bool

	gwx, gwh, gb []float64

	// Per-sequence caches for BPTT.
	xs   []float64   // copy of input sequence
	hs   [][]float64 // hs[t] = hidden after step t (hs[0] = zeros)
	cs   [][]float64 // cell states, cs[0] = zeros
	acts [][]float64 // acts[t] = packed activated gates [i f g o] of step t+1
	tanc []float64   // tanh(c_t) of final step reused by Backward
}

// NewLSTM builds an LSTM with deterministic Glorot-style initialization and
// the customary forget-gate bias of 1.
func NewLSTM(in, hidden int, seed int64) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Wx: make([]float64, 4*hidden*in),
		Wh: make([]float64, 4*hidden*hidden),
		B:  make([]float64, 4*hidden),
	}
	l.gwx = make([]float64, len(l.Wx))
	l.gwh = make([]float64, len(l.Wh))
	l.gb = make([]float64, len(l.B))
	r := rng(seed)
	limX := math.Sqrt(6.0 / float64(in+hidden))
	for i := range l.Wx {
		l.Wx[i] = (r.Float64()*2 - 1) * limX
	}
	limH := math.Sqrt(6.0 / float64(2*hidden))
	for i := range l.Wh {
		l.Wh[i] = (r.Float64()*2 - 1) * limH
	}
	for h := 0; h < hidden; h++ {
		l.B[hidden+h] = 1 // forget gate bias
	}
	return l
}

// Forward implements Layer. len(x) must be a positive multiple of In.
func (l *LSTM) Forward(x []float64) []float64 {
	if len(x) == 0 || len(x)%l.In != 0 {
		panic(errDimension("lstm input", len(x), l.In))
	}
	T := len(x) / l.In
	H := l.Hidden
	l.xs = append(l.xs[:0], x...)
	l.hs = l.hs[:0]
	l.cs = l.cs[:0]
	l.acts = l.acts[:0]
	h := make([]float64, H)
	c := make([]float64, H)
	l.hs = append(l.hs, h)
	l.cs = append(l.cs, c)

	for t := 0; t < T; t++ {
		xt := x[t*l.In : (t+1)*l.In]
		prevH, prevC := l.hs[t], l.cs[t]
		gates := make([]float64, 4*H) // pre-activation then activated in place
		for g := 0; g < 4*H; g++ {
			sum := l.B[g]
			wxRow := l.Wx[g*l.In : (g+1)*l.In]
			for i, xi := range xt {
				sum += wxRow[i] * xi
			}
			whRow := l.Wh[g*H : (g+1)*H]
			for j, hj := range prevH {
				sum += whRow[j] * hj
			}
			gates[g] = sum
		}
		newH := make([]float64, H)
		newC := make([]float64, H)
		for hidx := 0; hidx < H; hidx++ {
			i := sigmoidf(gates[hidx])
			f := sigmoidf(gates[H+hidx])
			g := math.Tanh(gates[2*H+hidx])
			o := sigmoidf(gates[3*H+hidx])
			gates[hidx], gates[H+hidx], gates[2*H+hidx], gates[3*H+hidx] = i, f, g, o
			newC[hidx] = f*prevC[hidx] + i*g
			newH[hidx] = o * math.Tanh(newC[hidx])
		}
		l.acts = append(l.acts, gates)
		l.hs = append(l.hs, newH)
		l.cs = append(l.cs, newC)
	}
	out := make([]float64, H)
	copy(out, l.hs[T])
	return out
}

// Backward implements Layer; dy is dL/d(final hidden state).
func (l *LSTM) Backward(dy []float64) []float64 {
	H := l.Hidden
	if len(dy) != H {
		panic(errDimension("lstm grad", len(dy), H))
	}
	T := len(l.xs) / l.In
	dx := make([]float64, len(l.xs))
	dh := make([]float64, H)
	copy(dh, dy)
	dc := make([]float64, H)
	dz := make([]float64, 4*H)

	for t := T - 1; t >= 0; t-- {
		gates := l.acts[t]
		prevH, prevC := l.hs[t], l.cs[t]
		curC := l.cs[t+1]
		xt := l.xs[t*l.In : (t+1)*l.In]
		for hidx := 0; hidx < H; hidx++ {
			i := gates[hidx]
			f := gates[H+hidx]
			g := gates[2*H+hidx]
			o := gates[3*H+hidx]
			tc := math.Tanh(curC[hidx])
			dO := dh[hidx] * tc
			dC := dc[hidx] + dh[hidx]*o*(1-tc*tc)
			dI := dC * g
			dG := dC * i
			dF := dC * prevC[hidx]
			dz[hidx] = dI * i * (1 - i)
			dz[H+hidx] = dF * f * (1 - f)
			dz[2*H+hidx] = dG * (1 - g*g)
			dz[3*H+hidx] = dO * o * (1 - o)
			dc[hidx] = dC * f
		}
		// Accumulate parameter grads and propagate to h_{t-1}, x_t.
		for hidx := range dh {
			dh[hidx] = 0
		}
		for g := 0; g < 4*H; g++ {
			d := dz[g]
			if d == 0 {
				continue
			}
			l.gb[g] += d
			gwxRow := l.gwx[g*l.In : (g+1)*l.In]
			for i2, xi := range xt {
				gwxRow[i2] += d * xi
			}
			gwhRow := l.gwh[g*H : (g+1)*H]
			whRow := l.Wh[g*H : (g+1)*H]
			for j := 0; j < H; j++ {
				gwhRow[j] += d * prevH[j]
				dh[j] += d * whRow[j]
			}
			wxRow := l.Wx[g*l.In : (g+1)*l.In]
			for i2 := 0; i2 < l.In; i2++ {
				dx[t*l.In+i2] += d * wxRow[i2]
			}
		}
	}
	return dx
}

func sigmoidf(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Params implements Layer.
func (l *LSTM) Params() [][]float64 { return [][]float64{l.Wx, l.Wh, l.B} }

// Grads implements Layer.
func (l *LSTM) Grads() [][]float64 { return [][]float64{l.gwx, l.gwh, l.gb} }

// ZeroGrads implements Layer.
func (l *LSTM) ZeroGrads() {
	for i := range l.gwx {
		l.gwx[i] = 0
	}
	for i := range l.gwh {
		l.gwh[i] = 0
	}
	for i := range l.gb {
		l.gb[i] = 0
	}
}

// Trainable implements Layer.
func (l *LSTM) Trainable() bool { return !l.Frozen }

// InSize implements Layer (features per timestep).
func (l *LSTM) InSize() int { return l.In }

// OutSize implements Layer.
func (l *LSTM) OutSize() int { return l.Hidden }

var _ Layer = (*LSTM)(nil)
