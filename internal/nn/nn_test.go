package nn

import (
	"math"
	"path/filepath"
	"testing"
)

func TestActivations(t *testing.T) {
	cases := []struct {
		act  Activation
		x    float64
		want float64
	}{
		{Identity, 3, 3},
		{ReLU, -2, 0},
		{ReLU, 2, 2},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
	}
	for _, c := range cases {
		if got := c.act.Apply(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%g)=%g want %g", c.act.Name(), c.x, got, c.want)
		}
	}
	// Derivative-from-output identities.
	if Sigmoid.DerivFromOutput(0.5) != 0.25 {
		t.Error("sigmoid deriv wrong")
	}
	if Tanh.DerivFromOutput(0) != 1 {
		t.Error("tanh deriv wrong")
	}
	if ReLU.DerivFromOutput(0) != 0 || ReLU.DerivFromOutput(1) != 1 {
		t.Error("relu deriv wrong")
	}
}

func TestActivationByName(t *testing.T) {
	for _, n := range []string{"identity", "relu", "sigmoid", "tanh"} {
		a, err := ActivationByName(n)
		if err != nil || a.Name() != n {
			t.Fatalf("ActivationByName(%q) = %v, %v", n, a, err)
		}
	}
	if _, err := ActivationByName("swish"); err == nil {
		t.Fatal("unknown activation accepted")
	}
}

func TestDenseForwardKnownWeights(t *testing.T) {
	d := NewDense(2, 1, Identity, 1)
	d.W[0], d.W[1] = 2, 3
	d.B[0] = 1
	got := d.Forward([]float64{10, 20})
	if got[0] != 2*10+3*20+1 {
		t.Fatalf("forward=%v", got)
	}
}

// numericalGrad estimates dLoss/dp for every parameter by central difference.
func numericalGrad(m *Sequential, x, y []float64, p []float64, i int) float64 {
	const eps = 1e-6
	loss := func() float64 {
		pred := m.Predict(x)
		sum := 0.0
		for j := range pred {
			d := pred[j] - y[j]
			sum += d * d
		}
		return sum / float64(len(pred))
	}
	orig := p[i]
	p[i] = orig + eps
	lp := loss()
	p[i] = orig - eps
	lm := loss()
	p[i] = orig
	return (lp - lm) / (2 * eps)
}

func checkGrads(t *testing.T, m *Sequential, x, y []float64, tol float64) {
	t.Helper()
	for _, l := range m.Layers {
		l.ZeroGrads()
	}
	pred := m.Predict(x)
	dy := make([]float64, len(pred))
	for j := range pred {
		dy[j] = 2 * (pred[j] - y[j]) / float64(len(pred))
	}
	for li := len(m.Layers) - 1; li >= 0; li-- {
		dy = m.Layers[li].Backward(dy)
	}
	for li, l := range m.Layers {
		params, grads := l.Params(), l.Grads()
		for pi := range params {
			for i := range params[pi] {
				want := numericalGrad(m, x, y, params[pi][i:], 0)
				got := grads[pi][i]
				if math.Abs(got-want) > tol*(1+math.Abs(want)) {
					t.Fatalf("layer %d param[%d][%d]: analytic %g vs numeric %g", li, pi, i, got, want)
				}
			}
		}
	}
}

func TestDenseGradCheck(t *testing.T) {
	m := NewSequential(
		NewDense(3, 4, Tanh, 7),
		NewDense(4, 2, Identity, 8),
	)
	checkGrads(t, m, []float64{0.5, -0.3, 0.8}, []float64{0.1, -0.2}, 1e-5)
}

func TestDenseGradCheckSigmoidReLU(t *testing.T) {
	m := NewSequential(
		NewDense(2, 5, Sigmoid, 3),
		NewDense(5, 1, Identity, 4),
	)
	checkGrads(t, m, []float64{0.9, -1.1}, []float64{0.4}, 1e-5)
}

func TestLSTMGradCheck(t *testing.T) {
	m := NewSequential(
		NewLSTM(1, 3, 11),
		NewDense(3, 1, Identity, 12),
	)
	checkGrads(t, m, []float64{0.1, -0.5, 0.9, 0.2, -0.1}, []float64{0.3}, 1e-4)
}

func TestSequentialLearnsLinearFunction(t *testing.T) {
	// y = 2a - 3b + 1 is learnable exactly by a single dense layer.
	m := NewSequential(NewDense(2, 1, Identity, 5))
	var xs [][]float64
	var ys [][]float64
	r := rng(42)
	for i := 0; i < 200; i++ {
		a, b := r.Float64()*2-1, r.Float64()*2-1
		xs = append(xs, []float64{a, b})
		ys = append(ys, []float64{2*a - 3*b + 1})
	}
	loss, err := m.Fit(xs, ys, FitOptions{Epochs: 300, BatchSize: 16, Optimizer: NewAdam(0.01), Shuffle: true})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-4 {
		t.Fatalf("final loss %g too high", loss)
	}
	d := m.Layers[0].(*Dense)
	if math.Abs(d.W[0]-2) > 0.05 || math.Abs(d.W[1]+3) > 0.05 || math.Abs(d.B[0]-1) > 0.05 {
		t.Fatalf("learned W=%v B=%v", d.W, d.B)
	}
}

func TestSGDMomentumLearns(t *testing.T) {
	m := NewSequential(NewDense(1, 1, Identity, 6))
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := [][]float64{{2}, {4}, {6}, {8}}
	loss, err := m.Fit(xs, ys, FitOptions{Epochs: 500, BatchSize: 4, Optimizer: NewSGD(0.02, 0.9)})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-3 {
		t.Fatalf("sgd loss=%g", loss)
	}
}

func TestFrozenLayerNotUpdated(t *testing.T) {
	frozen := NewDense(2, 2, Identity, 9)
	frozen.Frozen = true
	head := NewDense(2, 1, Identity, 10)
	m := NewSequential(frozen, head)
	before := append([]float64(nil), frozen.W...)
	xs := [][]float64{{1, 2}, {3, 4}}
	ys := [][]float64{{1}, {2}}
	if _, err := m.Fit(xs, ys, FitOptions{Epochs: 10, Optimizer: NewAdam(0.05)}); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if frozen.W[i] != before[i] {
			t.Fatal("frozen layer weights changed")
		}
	}
}

func TestParamCount(t *testing.T) {
	frozen := NewDense(5, 1, Identity, 1)
	frozen.Frozen = true
	head := NewDense(13, 1, Identity, 2)
	m := NewSequential(frozen, head) // shapes nonsensical for forward; count only
	total, trainable := m.ParamCount()
	if total != 6+14 || trainable != 14 {
		t.Fatalf("total=%d trainable=%d", total, trainable)
	}
}

func TestLSTMBaselineParamCount(t *testing.T) {
	// The Fig. 11 baseline: LSTM(1->133) + Dense(133->1) = 71,954 params,
	// the closest integer-hidden-size match to the paper's 71,851.
	m := NewSequential(NewLSTM(1, 133, 1), NewDense(133, 1, Identity, 2))
	total, trainable := m.ParamCount()
	if total != 71954 || trainable != 71954 {
		t.Fatalf("total=%d trainable=%d", total, trainable)
	}
}

func TestLSTMLearnsShortPattern(t *testing.T) {
	// Predict next value of an alternating sequence — requires memory.
	m := NewSequential(NewLSTM(1, 8, 21), NewDense(8, 1, Identity, 22))
	var xs [][]float64
	var ys [][]float64
	seq := []float64{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1}
	for i := 0; i+5 < len(seq); i++ {
		xs = append(xs, seq[i:i+5])
		ys = append(ys, []float64{seq[i+5]})
	}
	loss, err := m.Fit(xs, ys, FitOptions{Epochs: 200, BatchSize: 4, Optimizer: NewAdam(0.02)})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Fatalf("lstm loss=%g", loss)
	}
	if p := m.Predict1([]float64{1, 0, 1, 0, 1}); math.Abs(p-0) > 0.2 {
		t.Fatalf("predict=%g want ~0", p)
	}
}

func TestMetrics(t *testing.T) {
	m := NewSequential(NewDense(1, 1, Identity, 3))
	d := m.Layers[0].(*Dense)
	d.W[0], d.B[0] = 1, 0 // identity model
	xs := [][]float64{{1}, {2}, {3}}
	ys := []float64{1, 2, 3}
	if m.MSE(xs, ys) != 0 || m.RMSE(xs, ys) != 0 || m.MAE(xs, ys) != 0 {
		t.Fatal("perfect model has nonzero error")
	}
	if m.R2(xs, ys) != 1 {
		t.Fatalf("R2=%g", m.R2(xs, ys))
	}
	ysOff := []float64{2, 3, 4}
	if got := m.MAE(xs, ysOff); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MAE=%g", got)
	}
	// Degenerate targets: constant ys.
	if got := m.R2([][]float64{{1}, {1}}, []float64{1, 1}); got != 1 {
		t.Fatalf("R2 constant perfect = %g", got)
	}
	if got := m.R2([][]float64{{1}, {2}}, []float64{5, 5}); got != 0 {
		t.Fatalf("R2 constant wrong = %g", got)
	}
}

func TestEmptyDatasetErrors(t *testing.T) {
	m := NewSequential(NewDense(1, 1, Identity, 3))
	if _, err := m.Fit(nil, nil, FitOptions{}); err != ErrEmptyDataset {
		t.Fatalf("err=%v", err)
	}
	if _, err := m.TrainBatch(nil, nil, NewAdam(0)); err != ErrEmptyDataset {
		t.Fatalf("err=%v", err)
	}
	if m.MSE(nil, nil) != 0 || m.MAE(nil, nil) != 0 || m.R2(nil, nil) != 0 {
		t.Fatal("metrics on empty dataset should be 0")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	frozen := NewDense(5, 1, Tanh, 31)
	frozen.Frozen = true
	m := NewSequential(
		frozen,
		NewDense(1, 4, ReLU, 32),
		NewLSTM(4, 3, 33),
		NewDense(3, 1, Identity, 34),
	)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	t1, tr1 := m.ParamCount()
	t2, tr2 := m2.ParamCount()
	if t1 != t2 || tr1 != tr2 {
		t.Fatalf("param counts differ: (%d,%d) vs (%d,%d)", t1, tr1, t2, tr2)
	}
	// Same weights -> same outputs for the dense-only prefix.
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	got1 := m.Predict(x)
	got2 := m2.Predict(x)
	for i := range got1 {
		if math.Abs(got1[i]-got2[i]) > 1e-12 {
			t.Fatalf("outputs differ after reload: %v vs %v", got1, got2)
		}
	}
	if !m2.Layers[0].(*Dense).Frozen {
		t.Fatal("frozen flag lost on reload")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error")
	}
}

func BenchmarkDenseForward(b *testing.B) {
	d := NewDense(5, 1, Identity, 1)
	x := []float64{1, 2, 3, 4, 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Forward(x)
	}
}

func BenchmarkLSTMForward133(b *testing.B) {
	m := NewSequential(NewLSTM(1, 133, 1), NewDense(133, 1, Identity, 2))
	x := []float64{1, 2, 3, 4, 5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Predict(x)
	}
}
