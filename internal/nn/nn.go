// Package nn is a small, dependency-free neural-network substrate replacing
// the TensorFlow C API used by the original Apollo. It provides exactly what
// Delphi (§3.4.2) and the paper's LSTM baseline (Fig. 11) need: dense layers
// with pluggable activations, MSE loss, SGD/Adam optimizers, layer freezing
// ("untrainable" pre-trained feature models), an LSTM with full BPTT, and
// JSON model serialization.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Activation is an element-wise nonlinearity with its derivative expressed
// in terms of the activated output y = f(x).
type Activation interface {
	// Name identifies the activation for serialization.
	Name() string
	// Apply computes f(x).
	Apply(x float64) float64
	// DerivFromOutput computes f'(x) given y = f(x).
	DerivFromOutput(y float64) float64
}

type identity struct{}

func (identity) Name() string                    { return "identity" }
func (identity) Apply(x float64) float64         { return x }
func (identity) DerivFromOutput(float64) float64 { return 1 }

type relu struct{}

func (relu) Name() string { return "relu" }
func (relu) Apply(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}
func (relu) DerivFromOutput(y float64) float64 {
	if y > 0 {
		return 1
	}
	return 0
}

type sigmoid struct{}

func (sigmoid) Name() string                      { return "sigmoid" }
func (sigmoid) Apply(x float64) float64           { return 1 / (1 + math.Exp(-x)) }
func (sigmoid) DerivFromOutput(y float64) float64 { return y * (1 - y) }

type tanhAct struct{}

func (tanhAct) Name() string                      { return "tanh" }
func (tanhAct) Apply(x float64) float64           { return math.Tanh(x) }
func (tanhAct) DerivFromOutput(y float64) float64 { return 1 - y*y }

// Built-in activations.
var (
	Identity Activation = identity{}
	ReLU     Activation = relu{}
	Sigmoid  Activation = sigmoid{}
	Tanh     Activation = tanhAct{}
)

// ActivationByName resolves a serialized activation name.
func ActivationByName(name string) (Activation, error) {
	switch name {
	case "identity":
		return Identity, nil
	case "relu":
		return ReLU, nil
	case "sigmoid":
		return Sigmoid, nil
	case "tanh":
		return Tanh, nil
	default:
		return nil, fmt.Errorf("nn: unknown activation %q", name)
	}
}

// Layer is one differentiable stage of a Sequential model.
type Layer interface {
	// Forward computes the layer output for input x, caching what Backward
	// needs. Layers are single-threaded.
	Forward(x []float64) []float64
	// Backward receives dL/dy and returns dL/dx, accumulating parameter
	// gradients internally.
	Backward(dy []float64) []float64
	// Params returns parameter slices; optimizers mutate them in place.
	Params() [][]float64
	// Grads returns gradient accumulators parallel to Params.
	Grads() [][]float64
	// ZeroGrads clears gradient accumulators.
	ZeroGrads()
	// Trainable reports whether the optimizer may update this layer.
	Trainable() bool
	// InSize and OutSize describe the layer shape.
	InSize() int
	OutSize() int
}

// ParamCount sums the parameters of a layer set, total and trainable — the
// numbers the paper quotes for Delphi (50/14) and the LSTM baseline (71,851).
func ParamCount(layers []Layer) (total, trainable int) {
	for _, l := range layers {
		n := 0
		for _, p := range l.Params() {
			n += len(p)
		}
		total += n
		if l.Trainable() {
			trainable += n
		}
	}
	return total, trainable
}

// errDimension reports a shape mismatch.
func errDimension(what string, got, want int) error {
	return fmt.Errorf("nn: %s dimension %d, want %d", what, got, want)
}

// ErrEmptyDataset is returned by training helpers on empty input.
var ErrEmptyDataset = errors.New("nn: empty dataset")

// rng returns a deterministic random source for reproducible init.
func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
