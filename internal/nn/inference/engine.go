// Package inference is the zero-allocation fast lane for frozen Delphi-style
// stacks. Training keeps the layer-by-layer nn.Sequential path (gradient
// caches, per-call slices); inference at fleet scale cannot afford either, so
// an Engine flattens the whole stack — N per-feature Dense heads over a
// shared input window plus a combiner Dense over [head outputs ++ window ++
// mean ++ slope] — into one contiguous structure-of-arrays weight arena and
// evaluates it in a single pass with caller-provided scratch.
//
// The Engine is read-only after construction (it snapshots the weights), so
// any number of goroutines may call Forward/ForwardBatch concurrently with
// their own scratch — unlike Dense.Forward, which mutates the layer's
// training caches. Evaluation accumulates in exactly the order the layered
// path does, so outputs are bit-identical to nn.Sequential.Predict over the
// equivalent stack (the property test in this package pins that).
package inference

import (
	"fmt"

	"repro/internal/nn"
)

// Engine is a fused evaluator for a frozen head-stack + combiner model.
//
// Weight arena layout (one contiguous []float64, SoA):
//
//	[ head weights: heads×win row-major | head biases: heads |
//	  combiner weights: heads+win+2     | combiner bias: 1   ]
//
// The combiner input convention is Delphi's (§3.4.2): the heads' outputs,
// the raw (normalized) window, the window mean, and the window slope
// (last − first), in that order.
type Engine struct {
	win, heads int

	arena []float64 // backing store; hw/hb/cw are views into it
	hw    []float64 // heads*win, row-major: hw[h*win+i]
	hb    []float64 // heads
	cw    []float64 // heads+win+2
	cb    float64

	acts    []nn.Activation // per-head activations
	combAct nn.Activation

	// linear5 marks the Delphi production shape — window 5, every activation
	// Identity — which gets a fully unrolled kernel (no interface calls, dots
	// in registers). Identity.Apply is the identity on bits, so the kernel
	// stays bit-identical to the generic path.
	linear5 bool
}

// NewEngine compiles frozen feature heads (each win→1) and a combiner
// ((heads+win+2)→1) into a fused engine. Weights are copied into the arena;
// later mutation of the source layers does not affect the engine.
func NewEngine(features []*nn.Dense, combiner *nn.Dense) (*Engine, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("inference: no feature heads")
	}
	if combiner == nil {
		return nil, fmt.Errorf("inference: nil combiner")
	}
	win := features[0].In
	heads := len(features)
	for i, f := range features {
		if f == nil || f.In != win || f.Out != 1 {
			return nil, fmt.Errorf("inference: head %d shape %dx%d, want %dx1", i, f.In, f.Out, win)
		}
	}
	if want := heads + win + 2; combiner.In != want || combiner.Out != 1 {
		return nil, fmt.Errorf("inference: combiner shape %dx%d, want %dx1", combiner.In, combiner.Out, want)
	}
	cwLen := combiner.In
	arena := make([]float64, heads*win+heads+cwLen+1)
	e := &Engine{
		win: win, heads: heads,
		arena:   arena,
		hw:      arena[:heads*win],
		hb:      arena[heads*win : heads*win+heads],
		cw:      arena[heads*win+heads : heads*win+heads+cwLen],
		acts:    make([]nn.Activation, heads),
		combAct: combiner.Act,
	}
	for h, f := range features {
		copy(e.hw[h*win:(h+1)*win], f.W)
		e.hb[h] = f.B[0]
		e.acts[h] = f.Act
	}
	copy(e.cw, combiner.W)
	e.cb = combiner.B[0]
	arena[len(arena)-1] = e.cb
	e.linear5 = win == 5 && combiner.Act == nn.Identity
	for _, a := range e.acts {
		e.linear5 = e.linear5 && a == nn.Identity
	}
	return e, nil
}

// WindowSize is the shared input width of every head.
func (e *Engine) WindowSize() int { return e.win }

// Heads is the number of fused feature heads.
func (e *Engine) Heads() int { return e.heads }

// ScratchSize is the scratch length Forward requires.
func (e *Engine) ScratchSize() int { return e.heads }

// BatchScratchSize is the scratch length ForwardBatch requires for n windows.
func (e *Engine) BatchScratchSize(n int) int { return n * e.heads }

// Forward evaluates one window through the fused stack. scratch must have at
// least ScratchSize() elements and is clobbered; x is read-only. No
// allocation, safe for concurrent use with distinct scratch.
func (e *Engine) Forward(x, scratch []float64) float64 {
	if len(x) != e.win {
		panic(fmt.Sprintf("inference: window length %d, want %d", len(x), e.win))
	}
	if len(scratch) < e.heads {
		panic(fmt.Sprintf("inference: scratch length %d, want >= %d", len(scratch), e.heads))
	}
	if e.linear5 {
		return e.forward5(x, scratch)
	}
	for h := 0; h < e.heads; h++ {
		sum := e.hb[h]
		row := e.hw[h*e.win : (h+1)*e.win]
		for i, xi := range x {
			sum += row[i] * xi
		}
		scratch[h] = e.acts[h].Apply(sum)
	}
	return e.combine(x, scratch[:e.heads])
}

// ForwardBatch evaluates len(dst) windows packed row-major in xs
// (len(dst)*WindowSize values) in one sweep: each head's weight row is
// streamed across the whole batch before the next (the rows stay hot in
// cache), then the combiner folds each row. scratch must have at least
// BatchScratchSize(len(dst)) elements. Per-window results are bit-identical
// to Forward — blocking changes the order across windows, never the
// accumulation order within one.
func (e *Engine) ForwardBatch(dst, xs, scratch []float64) {
	n := len(dst)
	if len(xs) != n*e.win {
		panic(fmt.Sprintf("inference: batch payload %d values, want %d", len(xs), n*e.win))
	}
	if len(scratch) < n*e.heads {
		panic(fmt.Sprintf("inference: batch scratch %d, want >= %d", len(scratch), n*e.heads))
	}
	if e.linear5 {
		for i := 0; i < n; i++ {
			dst[i] = e.forward5(xs[i*5:i*5+5:i*5+5], scratch[i*e.heads:(i+1)*e.heads])
		}
		return
	}
	for h := 0; h < e.heads; h++ {
		b := e.hb[h]
		row := e.hw[h*e.win : (h+1)*e.win]
		act := e.acts[h]
		for i := 0; i < n; i++ {
			x := xs[i*e.win : (i+1)*e.win]
			sum := b
			for j, xj := range x {
				sum += row[j] * xj
			}
			scratch[i*e.heads+h] = act.Apply(sum)
		}
	}
	for i := 0; i < n; i++ {
		dst[i] = e.combine(xs[i*e.win:(i+1)*e.win], scratch[i*e.heads:(i+1)*e.heads])
	}
}

// forward5 is the unrolled linear kernel for window-5 all-Identity stacks:
// the window lives in registers across every head dot and the combiner fold.
// Accumulation order is exactly the generic path's (left-to-right per head,
// then head outputs, window, mean, slope), so results are bit-identical.
func (e *Engine) forward5(x, hs []float64) float64 {
	x0, x1, x2, x3, x4 := x[0], x[1], x[2], x[3], x[4]
	hw, hb, cw := e.hw, e.hb, e.cw
	sum := e.cb
	for h := 0; h < e.heads; h++ {
		r := hw[h*5 : h*5+5 : h*5+5]
		v := hb[h] + r[0]*x0 + r[1]*x1 + r[2]*x2 + r[3]*x3 + r[4]*x4
		hs[h] = v
		sum += cw[h] * v
	}
	off := e.heads
	sum = sum + cw[off]*x0 + cw[off+1]*x1 + cw[off+2]*x2 + cw[off+3]*x3 + cw[off+4]*x4
	mean := (x0 + x1 + x2 + x3 + x4) / 5
	slope := x4 - x0
	sum += cw[off+5] * mean
	sum += cw[off+6] * slope
	return sum
}

// combine folds one window and its head outputs through the combiner. The
// accumulation order matches the layered path exactly: head outputs, window
// values, mean, slope.
func (e *Engine) combine(x, heads []float64) float64 {
	sum := e.cb
	for h, v := range heads {
		sum += e.cw[h] * v
	}
	off := e.heads
	for i, xi := range x {
		sum += e.cw[off+i] * xi
	}
	mean := 0.0
	for _, xi := range x {
		mean += xi
	}
	mean /= float64(len(x))
	slope := x[len(x)-1] - x[0]
	sum += e.cw[off+e.win] * mean
	sum += e.cw[off+e.win+1] * slope
	return e.combAct.Apply(sum)
}
