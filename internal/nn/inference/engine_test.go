package inference

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// layeredPredict is the reference layer-by-layer evaluation of the stack:
// every head and the combiner run as their own nn.Sequential, with the
// combiner input assembled the way Delphi does (head outputs ++ window ++
// mean ++ slope). The engine must match it bit for bit.
func layeredPredict(features []*nn.Dense, combiner *nn.Dense, x []float64) float64 {
	cin := make([]float64, 0, combiner.In)
	for _, f := range features {
		cin = append(cin, nn.NewSequential(f).Predict(x)[0])
	}
	cin = append(cin, x...)
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	slope := x[len(x)-1] - x[0]
	cin = append(cin, mean, slope)
	return nn.NewSequential(combiner).Predict(cin)[0]
}

// randomStack builds a seeded stack of the given shape with a cycling mix of
// activations, so the equivalence holds beyond Delphi's all-Identity case.
func randomStack(win, heads int, seed int64) ([]*nn.Dense, *nn.Dense) {
	acts := []nn.Activation{nn.Identity, nn.ReLU, nn.Tanh, nn.Sigmoid}
	features := make([]*nn.Dense, heads)
	for h := range features {
		features[h] = nn.NewDense(win, 1, acts[h%len(acts)], seed+int64(h))
		features[h].Frozen = true
	}
	combiner := nn.NewDense(heads+win+2, 1, nn.Identity, seed+1000)
	return features, combiner
}

func TestEngineMatchesSequentialBitExact(t *testing.T) {
	for _, shape := range []struct{ win, heads int }{
		{3, 1}, {5, 6}, {8, 4}, {13, 9},
	} {
		features, combiner := randomStack(shape.win, shape.heads, int64(shape.win*100+shape.heads))
		eng, err := NewEngine(features, combiner)
		if err != nil {
			t.Fatalf("win=%d heads=%d: %v", shape.win, shape.heads, err)
		}
		scratch := make([]float64, eng.ScratchSize())
		r := rand.New(rand.NewSource(int64(shape.win + shape.heads)))
		for trial := 0; trial < 200; trial++ {
			x := make([]float64, shape.win)
			for i := range x {
				x[i] = r.NormFloat64() * float64(1+trial%7)
			}
			want := layeredPredict(features, combiner, x)
			got := eng.Forward(x, scratch)
			if got != want { // bit-identical, not approximately equal
				t.Fatalf("win=%d heads=%d trial=%d: fused %v != layered %v",
					shape.win, shape.heads, trial, got, want)
			}
		}
	}
}

func TestForwardBatchMatchesForwardBitExact(t *testing.T) {
	features, combiner := randomStack(5, 6, 42)
	eng, err := NewEngine(features, combiner)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 17, 256} {
		xs := make([]float64, n*eng.WindowSize())
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		dst := make([]float64, n)
		scratch := make([]float64, eng.BatchScratchSize(n))
		eng.ForwardBatch(dst, xs, scratch)
		single := make([]float64, eng.ScratchSize())
		for i := 0; i < n; i++ {
			want := eng.Forward(xs[i*eng.WindowSize():(i+1)*eng.WindowSize()], single)
			if dst[i] != want {
				t.Fatalf("n=%d row=%d: batch %v != single %v", n, i, dst[i], want)
			}
		}
	}
}

func TestEngineSnapshotsWeights(t *testing.T) {
	features, combiner := randomStack(5, 2, 1)
	eng, err := NewEngine(features, combiner)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4, 5}
	scratch := make([]float64, eng.ScratchSize())
	before := eng.Forward(x, scratch)
	combiner.W[0] += 1000 // mutate the source; the engine must not see it
	features[0].W[0] += 1000
	if after := eng.Forward(x, scratch); after != before {
		t.Fatalf("engine tracked source mutation: %v -> %v", before, after)
	}
}

func TestNewEngineRejectsBadShapes(t *testing.T) {
	features, combiner := randomStack(5, 6, 1)
	if _, err := NewEngine(nil, combiner); err == nil {
		t.Fatal("no heads accepted")
	}
	if _, err := NewEngine(features, nil); err == nil {
		t.Fatal("nil combiner accepted")
	}
	if _, err := NewEngine(features, nn.NewDense(5, 1, nn.Identity, 1)); err == nil {
		t.Fatal("mis-shaped combiner accepted")
	}
	bad := append([]*nn.Dense{nn.NewDense(4, 1, nn.Identity, 1)}, features[1:]...)
	if _, err := NewEngine(bad, combiner); err == nil {
		t.Fatal("mis-shaped head accepted")
	}
	if _, err := NewEngine([]*nn.Dense{nn.NewDense(5, 2, nn.Identity, 1)}, combiner); err == nil {
		t.Fatal("multi-output head accepted")
	}
}

func TestForwardZeroAlloc(t *testing.T) {
	features, combiner := randomStack(5, 6, 3)
	eng, err := NewEngine(features, combiner)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4, 5}
	scratch := make([]float64, eng.ScratchSize())
	if allocs := testing.AllocsPerRun(1000, func() { eng.Forward(x, scratch) }); allocs != 0 {
		t.Fatalf("Forward allocates %v per op, want 0", allocs)
	}
	dst := make([]float64, 64)
	xs := make([]float64, 64*eng.WindowSize())
	bscratch := make([]float64, eng.BatchScratchSize(64))
	if allocs := testing.AllocsPerRun(200, func() { eng.ForwardBatch(dst, xs, bscratch) }); allocs != 0 {
		t.Fatalf("ForwardBatch allocates %v per op, want 0", allocs)
	}
}

func TestDenseForwardIntoMatchesForward(t *testing.T) {
	d := nn.NewDense(7, 3, nn.Tanh, 11)
	r := rand.New(rand.NewSource(2))
	dst := make([]float64, 3)
	for trial := 0; trial < 100; trial++ {
		x := make([]float64, 7)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		want := d.Forward(x)
		d.ForwardInto(dst, x)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("trial %d out %d: %v != %v", trial, i, dst[i], want[i])
			}
		}
	}
	x := []float64{1, 2, 3, 4, 5, 6, 7}
	if allocs := testing.AllocsPerRun(1000, func() { d.ForwardInto(dst, x) }); allocs != 0 {
		t.Fatalf("ForwardInto allocates %v per op, want 0", allocs)
	}
}

// TestLinear5KernelMatchesSequentialBitExact pins the unrolled window-5
// all-Identity kernel (Delphi's production shape) against the layered path —
// the cycling-activation shapes above never take that branch.
func TestLinear5KernelMatchesSequentialBitExact(t *testing.T) {
	features := make([]*nn.Dense, 6)
	for h := range features {
		features[h] = nn.NewDense(5, 1, nn.Identity, int64(h+77))
		features[h].Frozen = true
	}
	combiner := nn.NewDense(6+5+2, 1, nn.Identity, 8877)
	eng, err := NewEngine(features, combiner)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.linear5 {
		t.Fatal("window-5 all-Identity stack must select the unrolled kernel")
	}
	scratch := make([]float64, eng.ScratchSize())
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 500; trial++ {
		x := make([]float64, 5)
		for i := range x {
			x[i] = r.NormFloat64() * float64(1+trial%9)
		}
		want := layeredPredict(features, combiner, x)
		if got := eng.Forward(x, scratch); got != want {
			t.Fatalf("trial %d: fused %v != layered %v", trial, got, want)
		}
	}
	// And the batched form against the single form.
	const n = 64
	xs := make([]float64, n*5)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	dst := make([]float64, n)
	bs := make([]float64, eng.BatchScratchSize(n))
	eng.ForwardBatch(dst, xs, bs)
	for i := 0; i < n; i++ {
		if want := eng.Forward(xs[i*5:(i+1)*5], scratch); dst[i] != want {
			t.Fatalf("row %d: batch %v != forward %v", i, dst[i], want)
		}
	}
}
