package nn

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: a Dense layer with identity activation is linear:
// f(ax) = a f(x) - (a-1) b and f(x+y) = f(x) + f(y) - b.
func TestDenseLinearityQuick(t *testing.T) {
	d := NewDense(3, 2, Identity, 17)
	f := func(x1, x2, x3, a float64) bool {
		clampAll(&x1, &x2, &x3, &a)
		x := []float64{x1, x2, x3}
		fx := d.Forward(x)
		ax := []float64{a * x1, a * x2, a * x3}
		fax := d.Forward(ax)
		for o := 0; o < d.Out; o++ {
			want := a*fx[o] - (a-1)*d.B[o]
			if math.Abs(fax[o]-want) > 1e-6*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func clampAll(vals ...*float64) {
	for _, v := range vals {
		if math.IsNaN(*v) || math.IsInf(*v, 0) || math.Abs(*v) > 1e6 {
			*v = 1
		}
	}
}

func TestFitOnEpochCallback(t *testing.T) {
	m := NewSequential(NewDense(1, 1, Identity, 4))
	xs := [][]float64{{1}, {2}}
	ys := [][]float64{{2}, {4}}
	var epochs []int
	var losses []float64
	if _, err := m.Fit(xs, ys, FitOptions{
		Epochs: 3, BatchSize: 2, Optimizer: NewSGD(0.01, 0),
		OnEpoch: func(e int, l float64) { epochs = append(epochs, e); losses = append(losses, l) },
	}); err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 || epochs[2] != 2 {
		t.Fatalf("epochs=%v", epochs)
	}
	if losses[2] > losses[0] {
		t.Fatalf("loss increased: %v", losses)
	}
}

func TestTrainBatchTargetArity(t *testing.T) {
	m := NewSequential(NewDense(2, 2, Identity, 5))
	if _, err := m.TrainBatch([][]float64{{1, 2}}, [][]float64{{1}}, NewSGD(0.1, 0)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestOptimizersKeyStateByParameter(t *testing.T) {
	// Two layers with identical shapes must not share optimizer state.
	l1 := NewDense(1, 1, Identity, 6)
	l2 := NewDense(1, 1, Identity, 7)
	m := NewSequential(l1, l2)
	opt := NewAdam(0.1)
	xs := [][]float64{{1}}
	ys := [][]float64{{5}}
	w1a, w2a := l1.W[0], l2.W[0]
	if _, err := m.TrainBatch(xs, ys, opt); err != nil {
		t.Fatal(err)
	}
	if l1.W[0] == w1a && l2.W[0] == w2a {
		t.Fatal("no parameter moved")
	}
	if len(opt.m) != 4 { // W and B of both layers
		t.Fatalf("adam state entries=%d", len(opt.m))
	}
}

func TestSGDMomentumState(t *testing.T) {
	s := NewSGD(0.1, 0.9)
	l := NewDense(1, 1, Identity, 8)
	l.ZeroGrads()
	l.Forward([]float64{1})
	l.Backward([]float64{1})
	s.Step([]Layer{l}, 1)
	if len(s.vel) != 2 {
		t.Fatalf("velocity entries=%d", len(s.vel))
	}
}

func TestParamCountHelpers(t *testing.T) {
	l := NewLSTM(1, 4, 9)
	total, trainable := ParamCount([]Layer{l})
	want := 4*4*(1+4+1) + 0 // 4H*(In) + 4H*H + 4H = 16 + 64 + 16 = 96
	_ = want
	if total != 96 || trainable != 96 {
		t.Fatalf("total=%d trainable=%d", total, trainable)
	}
	l.Frozen = true
	_, trainable = ParamCount([]Layer{l})
	if trainable != 0 {
		t.Fatalf("frozen trainable=%d", trainable)
	}
}

func TestDensePanicsOnBadShapes(t *testing.T) {
	d := NewDense(2, 1, Identity, 10)
	assertPanics(t, func() { d.Forward([]float64{1}) })
	d.Forward([]float64{1, 2})
	assertPanics(t, func() { d.Backward([]float64{1, 2}) })
	l := NewLSTM(2, 2, 11)
	assertPanics(t, func() { l.Forward([]float64{1, 2, 3}) }) // not a multiple of In
	l.Forward([]float64{1, 2, 3, 4})
	assertPanics(t, func() { l.Backward([]float64{1, 2, 3}) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}
