package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Sequential chains layers into a model trained with MSE loss.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a model from layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Predict runs a forward pass.
func (m *Sequential) Predict(x []float64) []float64 {
	out := x
	for _, l := range m.Layers {
		out = l.Forward(out)
	}
	return out
}

// Predict1 runs a forward pass on a model with a single output.
func (m *Sequential) Predict1(x []float64) float64 { return m.Predict(x)[0] }

// TrainBatch performs one optimizer step over the batch with MSE loss and
// returns the mean loss. xs[i] must match the first layer's input size and
// ys[i] the last layer's output size.
func (m *Sequential) TrainBatch(xs, ys [][]float64, opt Optimizer) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, ErrEmptyDataset
	}
	for _, l := range m.Layers {
		l.ZeroGrads()
	}
	loss := 0.0
	for i := range xs {
		pred := m.Predict(xs[i])
		if len(pred) != len(ys[i]) {
			return 0, errDimension("target", len(ys[i]), len(pred))
		}
		dy := make([]float64, len(pred))
		for j := range pred {
			diff := pred[j] - ys[i][j]
			loss += diff * diff
			dy[j] = 2 * diff / float64(len(pred))
		}
		for li := len(m.Layers) - 1; li >= 0; li-- {
			dy = m.Layers[li].Backward(dy)
		}
	}
	opt.Step(m.Layers, len(xs))
	return loss / float64(len(xs)), nil
}

// FitOptions controls Fit.
type FitOptions struct {
	Epochs    int
	BatchSize int
	Optimizer Optimizer
	// Shuffle permutes sample order each epoch with the given seed.
	Shuffle bool
	Seed    int64
	// OnEpoch, if set, receives (epoch, meanLoss) after each epoch.
	OnEpoch func(epoch int, loss float64)
}

// Fit trains the model for the configured epochs and returns the final
// epoch's mean loss.
func (m *Sequential) Fit(xs, ys [][]float64, opts FitOptions) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, ErrEmptyDataset
	}
	if opts.Epochs < 1 {
		opts.Epochs = 1
	}
	if opts.BatchSize < 1 {
		opts.BatchSize = 32
	}
	if opts.Optimizer == nil {
		opts.Optimizer = NewAdam(1e-3)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	r := rng(opts.Seed)
	var last float64
	for e := 0; e < opts.Epochs; e++ {
		if opts.Shuffle {
			r.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		}
		total, batches := 0.0, 0
		for start := 0; start < len(idx); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			bx := make([][]float64, 0, end-start)
			by := make([][]float64, 0, end-start)
			for _, i := range idx[start:end] {
				bx = append(bx, xs[i])
				by = append(by, ys[i])
			}
			loss, err := m.TrainBatch(bx, by, opts.Optimizer)
			if err != nil {
				return 0, err
			}
			total += loss
			batches++
		}
		last = total / float64(batches)
		if opts.OnEpoch != nil {
			opts.OnEpoch(e, last)
		}
	}
	return last, nil
}

// MSE returns the mean squared error of the model over a dataset of
// single-output samples.
func (m *Sequential) MSE(xs [][]float64, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for i := range xs {
		d := m.Predict1(xs[i]) - ys[i]
		sum += d * d
	}
	return sum / float64(len(xs))
}

// RMSE is the root of MSE.
func (m *Sequential) RMSE(xs [][]float64, ys []float64) float64 { return math.Sqrt(m.MSE(xs, ys)) }

// MAE returns the mean absolute error over single-output samples.
func (m *Sequential) MAE(xs [][]float64, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for i := range xs {
		sum += math.Abs(m.Predict1(xs[i]) - ys[i])
	}
	return sum / float64(len(xs))
}

// R2 returns the coefficient of determination over single-output samples.
func (m *Sequential) R2(xs [][]float64, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mean := 0.0
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	ssRes, ssTot := 0.0, 0.0
	for i := range xs {
		d := ys[i] - m.Predict1(xs[i])
		ssRes += d * d
		t := ys[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// ParamCount reports (total, trainable) parameters.
func (m *Sequential) ParamCount() (int, int) { return ParamCount(m.Layers) }

// Serialization -------------------------------------------------------------

type layerJSON struct {
	Type   string    `json:"type"` // "dense" or "lstm"
	In     int       `json:"in"`
	Out    int       `json:"out"`
	Act    string    `json:"act,omitempty"`
	Frozen bool      `json:"frozen,omitempty"`
	W      []float64 `json:"w,omitempty"`
	B      []float64 `json:"b,omitempty"`
	Wx     []float64 `json:"wx,omitempty"`
	Wh     []float64 `json:"wh,omitempty"`
}

type modelJSON struct {
	Layers []layerJSON `json:"layers"`
}

// MarshalJSON implements json.Marshaler.
func (m *Sequential) MarshalJSON() ([]byte, error) {
	out := modelJSON{}
	for _, l := range m.Layers {
		switch v := l.(type) {
		case *Dense:
			out.Layers = append(out.Layers, layerJSON{
				Type: "dense", In: v.In, Out: v.Out, Act: v.Act.Name(),
				Frozen: v.Frozen, W: v.W, B: v.B,
			})
		case *LSTM:
			out.Layers = append(out.Layers, layerJSON{
				Type: "lstm", In: v.In, Out: v.Hidden,
				Frozen: v.Frozen, Wx: v.Wx, Wh: v.Wh, B: v.B,
			})
		default:
			return nil, fmt.Errorf("nn: cannot serialize layer %T", l)
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Sequential) UnmarshalJSON(b []byte) error {
	var in modelJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	m.Layers = nil
	for _, lj := range in.Layers {
		switch lj.Type {
		case "dense":
			act, err := ActivationByName(lj.Act)
			if err != nil {
				return err
			}
			d := NewDense(lj.In, lj.Out, act, 0)
			if len(lj.W) != lj.In*lj.Out || len(lj.B) != lj.Out {
				return fmt.Errorf("nn: dense weight shape mismatch")
			}
			copy(d.W, lj.W)
			copy(d.B, lj.B)
			d.Frozen = lj.Frozen
			m.Layers = append(m.Layers, d)
		case "lstm":
			l := NewLSTM(lj.In, lj.Out, 0)
			if len(lj.Wx) != len(l.Wx) || len(lj.Wh) != len(l.Wh) || len(lj.B) != len(l.B) {
				return fmt.Errorf("nn: lstm weight shape mismatch")
			}
			copy(l.Wx, lj.Wx)
			copy(l.Wh, lj.Wh)
			copy(l.B, lj.B)
			l.Frozen = lj.Frozen
			m.Layers = append(m.Layers, l)
		default:
			return fmt.Errorf("nn: unknown layer type %q", lj.Type)
		}
	}
	return nil
}

// Save writes the model to a JSON file.
func (m *Sequential) Save(path string) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Load reads a model from a JSON file.
func Load(path string) (*Sequential, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Sequential
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}
