package workloads

import (
	"testing"
	"time"
)

func TestHACCRegularShape(t *testing.T) {
	trace := HACCRegular(30*time.Second, 1e9)
	if len(trace) != 30 {
		t.Fatalf("len=%d", len(trace))
	}
	if trace[0] != 1e9 {
		t.Fatalf("start=%f", trace[0])
	}
	// Drops of exactly 38000 every 5 seconds.
	if trace[4] != 1e9 || trace[5] != 1e9-38000 {
		t.Fatalf("first drop wrong: t4=%f t5=%f", trace[4], trace[5])
	}
	if trace[29] != 1e9-38000*5 {
		t.Fatalf("end=%f", trace[29])
	}
	// Monotone non-increasing.
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[i-1] {
			t.Fatalf("capacity increased at %d", i)
		}
	}
}

func TestHACCIrregularProperties(t *testing.T) {
	trace := HACCIrregular(30*time.Minute, 1e9, 42)
	if len(trace) != 1800 {
		t.Fatalf("len=%d", len(trace))
	}
	// Deterministic.
	again := HACCIrregular(30*time.Minute, 1e9, 42)
	for i := range trace {
		if trace[i] != again[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	// Different seeds differ.
	other := HACCIrregular(30*time.Minute, 1e9, 43)
	same := true
	for i := range trace {
		if trace[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 identical")
	}
	// Every drop is within [19000, 38000] and gaps within [5,20]s.
	lastDrop := 0
	for i := 1; i < len(trace); i++ {
		if trace[i] == trace[i-1] {
			continue
		}
		d := trace[i-1] - trace[i]
		if d < 19000 || d > 38000 {
			t.Fatalf("drop %f out of range at %d", d, i)
		}
		if lastDrop > 0 {
			gap := i - lastDrop
			if gap < 5 || gap > 20 {
				t.Fatalf("gap %d out of range at %d", gap, i)
			}
		}
		lastDrop = i
	}
	if lastDrop == 0 {
		t.Fatal("no writes happened in 30 minutes")
	}
}

func TestKernels(t *testing.T) {
	if VPIC.TotalBytes() != int64(32<<20)*16*2560 {
		t.Fatalf("vpic total=%d", VPIC.TotalBytes())
	}
	if !BDCATS.Read || VPIC.Read || !Montage.Read {
		t.Fatal("kernel directions wrong")
	}
	if Montage.BytesPerProcPerStep != 10<<20 {
		t.Fatal("montage size wrong")
	}
}

func TestIORGenerate(t *testing.T) {
	cfg := IORConfig{TransferSize: 1 << 20, OpsPerStep: 100, Steps: 4, ReadFraction: 0.5, Seed: 7}
	ops := cfg.Generate(0)
	if len(ops) != 100 {
		t.Fatalf("ops=%d", len(ops))
	}
	reads := 0
	for _, op := range ops {
		if op.Bytes != 1<<20 {
			t.Fatalf("bytes=%d", op.Bytes)
		}
		if op.Read {
			reads++
		}
	}
	if reads == 0 || reads == 100 {
		t.Fatalf("reads=%d not mixed", reads)
	}
	// Deterministic per step.
	again := cfg.Generate(0)
	for i := range ops {
		if ops[i] != again[i] {
			t.Fatal("nondeterministic ops")
		}
	}
	// Different steps differ.
	other := cfg.Generate(1)
	diff := false
	for i := range ops {
		if ops[i] != other[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("steps identical")
	}
}

func TestSARSeries(t *testing.T) {
	for _, m := range SARMetrics() {
		s := SARSeries(m, "nvme", 200, 1)
		if len(s) != 200 {
			t.Fatalf("%s: len=%d", m, len(s))
		}
		for i, v := range s {
			if v < 0 {
				t.Fatalf("%s: negative value %f at %d", m, v, i)
			}
		}
	}
	// NVMe throughput dominates HDD throughput.
	nv := SARSeries(MetricTPS, "nvme", 500, 2)
	hd := SARSeries(MetricTPS, "hdd", 500, 2)
	var sn, sh float64
	for i := range nv {
		sn += nv[i]
		sh += hd[i]
	}
	if sn <= sh {
		t.Fatalf("nvme tps %f <= hdd tps %f", sn, sh)
	}
	// HDD latency exceeds NVMe latency.
	nvA := SARSeries(MetricAwait, "nvme", 500, 3)
	hdA := SARSeries(MetricAwait, "hdd", 500, 3)
	sn, sh = 0, 0
	for i := range nvA {
		sn += nvA[i]
		sh += hdA[i]
	}
	if sh <= sn {
		t.Fatalf("hdd await %f <= nvme await %f", sh, sn)
	}
}

func TestSARMetricNames(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range SARMetrics() {
		if seen[m.String()] {
			t.Fatalf("duplicate name %s", m)
		}
		seen[m.String()] = true
	}
	if SARMetric(99).String() != "sar(?)" {
		t.Fatal("unknown metric name")
	}
}
