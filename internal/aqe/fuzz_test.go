package aqe

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/score"
)

// fuzzResolver rejects every table: Prepare never executes, so resolution is
// irrelevant — the fuzz target exercises only the lexer, parser and planner.
type fuzzResolver struct{}

func (fuzzResolver) Resolve(string) (score.Executor, error) {
	return nil, errors.New("aqe: fuzz resolver has no tables")
}

// FuzzPrepare feeds arbitrary query text to the full parse+plan path. The
// contract: never panic, and every rejection is a typed *SyntaxError (parse
// errors carry a position) or an "aqe:"-prefixed planner error — never an
// untyped internal error.
func FuzzPrepare(f *testing.F) {
	f.Add("SELECT COUNT(*) FROM node3.nvme0.capacity")
	f.Add("SELECT AVG(metric), MIN(Timestamp) FROM t WHERE Timestamp >= 5 AND Timestamp < 100")
	f.Add("SELECT SUM(metric) FROM t ORDER BY Timestamp DESC LIMIT 10")
	f.Add("select max(metric) from t")
	f.Add("SELECT COUNT(* FROM")          // unbalanced
	f.Add("SELECT MEDIAN(metric) FROM t") // unsupported aggregate
	f.Add("\x00\xff\xfe")                 // binary garbage
	f.Add(strings.Repeat("(", 1024))      // deep nesting
	f.Add("SELECT " + strings.Repeat("COUNT(*),", 100) + "COUNT(*) FROM t")

	e := NewEngine(fuzzResolver{})
	f.Fuzz(func(t *testing.T, src string) {
		plan, err := e.Prepare(src)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) && !strings.HasPrefix(err.Error(), "aqe:") {
				t.Fatalf("Prepare(%q) returned untyped error %T: %v", src, err, err)
			}
			if plan != nil {
				t.Fatalf("Prepare(%q) returned both a plan and error %v", src, err)
			}
			return
		}
		if plan == nil {
			t.Fatalf("Prepare(%q) returned neither plan nor error", src)
		}
	})
}
