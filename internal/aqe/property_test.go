package aqe

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/telemetry"
)

// Property: whitespace and keyword case never change parse results.
func TestParseCaseAndWhitespaceInsensitive(t *testing.T) {
	variants := []string{
		"SELECT MAX(Timestamp), metric FROM t1 UNION SELECT metric, MAX(Timestamp) FROM t2",
		"select max(timestamp), metric from t1 union select metric, max(timestamp) from t2",
		"  SeLeCt   MAX( Timestamp ) ,  metric\n FROM t1\nUNION\nSELECT metric , MAX(Timestamp) FROM t2 ;",
	}
	var first *Query
	for i, src := range variants {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if first == nil {
			first = q
			continue
		}
		if fmt.Sprintf("%+v", q) != fmt.Sprintf("%+v", first) {
			t.Fatalf("variant %d parses differently:\n%+v\n%+v", i, q, first)
		}
	}
}

// Property: for any generated valid query, Parse succeeds and Complexity
// equals the number of UNION branches generated.
func TestParseGeneratedQueriesQuick(t *testing.T) {
	items := []string{
		"metric", "Timestamp", "source",
		"MAX(Timestamp)", "MIN(Timestamp)", "MAX(metric)", "MIN(metric)",
		"AVG(metric)", "SUM(metric)", "COUNT(*)",
	}
	wheres := []string{
		"",
		" WHERE Timestamp BETWEEN 10 AND 99",
		" WHERE Timestamp >= 5",
		" WHERE Timestamp <= 100",
		" WHERE Timestamp >= 5 AND Timestamp <= 100",
		" WHERE Timestamp = 7",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		branches := 1 + r.Intn(8)
		var sb strings.Builder
		for b := 0; b < branches; b++ {
			if b > 0 {
				sb.WriteString(" UNION ")
			}
			sb.WriteString("SELECT ")
			nItems := 1 + r.Intn(3)
			for i := 0; i < nItems; i++ {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(items[r.Intn(len(items))])
			}
			fmt.Fprintf(&sb, " FROM table_%d%s", r.Intn(20), wheres[r.Intn(len(wheres))])
		}
		q, err := Parse(sb.String())
		if err != nil {
			t.Logf("query %q: %v", sb.String(), err)
			return false
		}
		return q.Complexity() == branches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: aggregates computed by the engine agree with a direct fold over
// the executor's entries.
func TestAggregatesMatchDirectFoldQuick(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		ex := &fakeExec{id: "t"}
		for i, v := range raw {
			ex.entries = append(ex.entries, telemetry.NewFact("t", int64(i), float64(v)))
		}
		eng := NewEngine(mapResolver{"t": ex})
		res, err := eng.Query("SELECT COUNT(*), SUM(metric), MIN(metric), MAX(metric) FROM t WHERE Timestamp >= 0")
		if err != nil {
			return false
		}
		if len(res.Rows) != 1 {
			return false
		}
		row := res.Rows[0]
		var sum float64
		min, max := float64(raw[0]), float64(raw[0])
		for _, v := range raw {
			fv := float64(v)
			sum += fv
			if fv < min {
				min = fv
			}
			if fv > max {
				max = fv
			}
		}
		return row[0].Int == int64(len(raw)) && row[1].F == sum && row[2].F == min && row[3].F == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
