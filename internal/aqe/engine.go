package aqe

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/score"
	"repro/internal/telemetry"
)

// Resolver maps table names to SCoRe Query Executors. score.Graph adapted by
// GraphResolver is the standard implementation; the LDMS comparison plugs in
// its own store.
type Resolver interface {
	Resolve(table string) (score.Executor, error)
}

// ErrNoSuchTable is returned when a queried table has no vertex.
var ErrNoSuchTable = errors.New("aqe: no such table")

// GraphResolver adapts a SCoRe graph to the Resolver interface.
type GraphResolver struct {
	Graph *score.Graph
}

// Resolve implements Resolver.
func (r GraphResolver) Resolve(table string) (score.Executor, error) {
	v, ok := r.Graph.Lookup(telemetry.MetricID(table))
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	return v, nil
}

// Cell is one result value.
type Cell struct {
	// Kind discriminates the union.
	Kind CellKind
	Int  int64
	F    float64
	Str  string
}

// CellKind tags Cell.
type CellKind int

// Cell kinds.
const (
	CellInt CellKind = iota
	CellFloat
	CellString
)

// String renders the cell.
func (c Cell) String() string {
	switch c.Kind {
	case CellInt:
		return fmt.Sprintf("%d", c.Int)
	case CellFloat:
		return fmt.Sprintf("%g", c.F)
	default:
		return c.Str
	}
}

func intCell(v int64) Cell     { return Cell{Kind: CellInt, Int: v} }
func floatCell(v float64) Cell { return Cell{Kind: CellFloat, F: v} }
func strCell(s string) Cell    { return Cell{Kind: CellString, Str: s} }

// Result is a query result: one row set per UNION branch, concatenated in
// branch order.
type Result struct {
	Columns []string
	Rows    [][]Cell
}

// Engine executes parsed queries against a Resolver. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	res Resolver
	// Sequential disables branch parallelism (ablation).
	Sequential bool
}

// NewEngine builds a query engine.
func NewEngine(res Resolver) *Engine { return &Engine{res: res} }

// Query parses and executes src.
func (e *Engine) Query(src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return e.Execute(q)
}

// Execute runs a parsed query. UNION branches are resolved in parallel —
// "highly parallel and decoupled access to information within the Apollo
// service" (§3.1) — and their rows concatenated in branch order.
func (e *Engine) Execute(q *Query) (*Result, error) {
	if len(q.Selects) == 0 {
		return nil, errors.New("aqe: empty query")
	}
	// Column headers come from the first branch; all branches must have the
	// same arity (standard UNION semantics).
	arity := len(q.Selects[0].Items)
	for _, s := range q.Selects {
		if len(s.Items) != arity {
			return nil, errors.New("aqe: UNION branches have different arity")
		}
	}
	cols := make([]string, arity)
	for i, it := range q.Selects[0].Items {
		cols[i] = it.Label()
	}

	branchRows := make([][][]Cell, len(q.Selects))
	branchErrs := make([]error, len(q.Selects))
	if e.Sequential {
		for i := range q.Selects {
			branchRows[i], branchErrs[i] = e.execSelect(q.Selects[i])
		}
	} else {
		var wg sync.WaitGroup
		for i := range q.Selects {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				branchRows[i], branchErrs[i] = e.execSelect(q.Selects[i])
			}(i)
		}
		wg.Wait()
	}
	res := &Result{Columns: cols}
	for i := range branchRows {
		if branchErrs[i] != nil {
			return nil, branchErrs[i]
		}
		res.Rows = append(res.Rows, branchRows[i]...)
	}
	return res, nil
}

// execSelect evaluates one branch.
func (e *Engine) execSelect(s SelectStmt) ([][]Cell, error) {
	ex, err := e.res.Resolve(s.Table)
	if err != nil {
		return nil, err
	}
	hasAgg := false
	for _, it := range s.Items {
		if it.Agg != AggNone {
			hasAgg = true
			break
		}
	}

	// Fast path for the canonical latest-value query:
	// every item is either MAX(Timestamp) or a bare column, no WHERE.
	if s.Where == nil && s.Order == nil && s.Limit == 0 && hasAgg && latestOnly(s.Items) {
		info, ok := ex.Latest()
		if !ok {
			return nil, nil
		}
		return [][]Cell{rowFor(s.Items, info)}, nil
	}

	// General path: scan the (possibly archive-backed) range, which yields
	// entries in ascending timestamp order.
	from, to := int64(-1<<62), int64(1<<62)
	if s.Where != nil {
		from, to = s.Where.From, s.Where.To
	}
	entries := ex.Range(from, to)
	if !hasAgg {
		if s.Order != nil && s.Order.Desc {
			for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
				entries[i], entries[j] = entries[j], entries[i]
			}
		}
		if s.Limit > 0 && len(entries) > s.Limit {
			entries = entries[:s.Limit]
		}
		rows := make([][]Cell, 0, len(entries))
		for _, in := range entries {
			rows = append(rows, rowFor(s.Items, in))
		}
		return rows, nil
	}
	rows, err := aggregateRows(s.Items, entries)
	if err != nil {
		return nil, err
	}
	if s.Limit > 0 && len(rows) > s.Limit {
		rows = rows[:s.Limit]
	}
	return rows, nil
}

// latestOnly reports whether the select list is satisfied by Latest():
// aggregates only of the form MAX(Timestamp) mixed with bare columns.
func latestOnly(items []SelectItem) bool {
	for _, it := range items {
		if it.Agg == AggNone {
			continue
		}
		if it.Agg != AggMax || it.Col != ColTimestamp {
			return false
		}
	}
	return true
}

// rowFor renders one Information tuple through the select list.
func rowFor(items []SelectItem, in telemetry.Info) []Cell {
	row := make([]Cell, len(items))
	for i, it := range items {
		switch it.Col {
		case ColTimestamp:
			row[i] = intCell(in.Timestamp)
		case ColMetric:
			row[i] = floatCell(in.Value)
		case ColSource:
			row[i] = strCell(in.Source.String())
		default:
			row[i] = intCell(1)
		}
	}
	return row
}

// aggregateRows evaluates a select list with aggregates over a scanned range,
// producing a single row.
func aggregateRows(items []SelectItem, entries []telemetry.Info) ([][]Cell, error) {
	if len(entries) == 0 {
		return nil, nil
	}
	row := make([]Cell, len(items))
	for i, it := range items {
		switch it.Agg {
		case AggNone:
			// Bare columns alongside aggregates take the newest entry's
			// value (the paper's query pairs MAX(Timestamp) with metric).
			row[i] = rowFor([]SelectItem{it}, entries[len(entries)-1])[0]
		case AggCount:
			row[i] = intCell(int64(len(entries)))
		case AggMax, AggMin:
			if it.Col == ColTimestamp {
				v := entries[0].Timestamp
				for _, in := range entries[1:] {
					if (it.Agg == AggMax && in.Timestamp > v) || (it.Agg == AggMin && in.Timestamp < v) {
						v = in.Timestamp
					}
				}
				row[i] = intCell(v)
			} else {
				v := entries[0].Value
				for _, in := range entries[1:] {
					if (it.Agg == AggMax && in.Value > v) || (it.Agg == AggMin && in.Value < v) {
						v = in.Value
					}
				}
				row[i] = floatCell(v)
			}
		case AggAvg, AggSum:
			if it.Col != ColMetric {
				return nil, fmt.Errorf("aqe: %s supports only the metric column", it.Agg)
			}
			sum := 0.0
			for _, in := range entries {
				sum += in.Value
			}
			if it.Agg == AggAvg {
				sum /= float64(len(entries))
			}
			row[i] = floatCell(sum)
		}
	}
	return [][]Cell{row}, nil
}
