package aqe

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/score"
	"repro/internal/telemetry"
)

// Resolver maps table names to SCoRe Query Executors. score.Graph adapted by
// GraphResolver is the standard implementation; the LDMS comparison plugs in
// its own store.
type Resolver interface {
	Resolve(table string) (score.Executor, error)
}

// ErrNoSuchTable is returned when a queried table has no vertex.
var ErrNoSuchTable = errors.New("aqe: no such table")

var (
	errEmptyQuery = errors.New("aqe: empty query")
	errUnionArity = errors.New("aqe: UNION branches have different arity")
)

// GraphResolver adapts a SCoRe graph to the Resolver interface.
type GraphResolver struct {
	Graph *score.Graph
}

// Resolve implements Resolver.
func (r GraphResolver) Resolve(table string) (score.Executor, error) {
	v, ok := r.Graph.Lookup(telemetry.MetricID(table))
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
	}
	return v, nil
}

// Cell is one result value.
type Cell struct {
	// Kind discriminates the union.
	Kind CellKind
	Int  int64
	F    float64
	Str  string
}

// CellKind tags Cell.
type CellKind int

// Cell kinds.
const (
	CellInt CellKind = iota
	CellFloat
	CellString
)

// String renders the cell.
func (c Cell) String() string {
	switch c.Kind {
	case CellInt:
		return fmt.Sprintf("%d", c.Int)
	case CellFloat:
		return fmt.Sprintf("%g", c.F)
	default:
		return c.Str
	}
}

func intCell(v int64) Cell     { return Cell{Kind: CellInt, Int: v} }
func floatCell(v float64) Cell { return Cell{Kind: CellFloat, F: v} }
func strCell(s string) Cell    { return Cell{Kind: CellString, Str: s} }

// Result is a query result: one row set per UNION branch, concatenated in
// branch order.
type Result struct {
	Columns []string
	Rows    [][]Cell
}

// Engine executes queries against a Resolver through prepared plans: query
// text is lexed, parsed, and compiled once, cached in an LRU keyed on the
// text, and re-executed from the compiled form. The zero value is not usable;
// construct with NewEngine.
type Engine struct {
	res Resolver
	// Sequential disables branch parallelism (ablation).
	Sequential bool

	cache   *planCache // nil when disabled
	workers int        // branch fan-out bound

	obsHits      *obs.Counter
	obsMisses    *obs.Counter
	obsOccupancy *obs.Gauge
	obsLatency   *obs.Histogram
}

// Option configures an Engine.
type Option func(*engineConfig)

type engineConfig struct {
	cacheSize   int
	parallelism int
}

// WithPlanCache sets the prepared-plan LRU capacity. Zero selects
// DefaultPlanCacheSize; negative disables caching (every Query re-parses, as
// the cold-path benchmark baseline does).
func WithPlanCache(n int) Option {
	return func(c *engineConfig) { c.cacheSize = n }
}

// WithParallelism bounds the UNION-branch fan-out. Zero selects GOMAXPROCS.
func WithParallelism(n int) Option {
	return func(c *engineConfig) { c.parallelism = n }
}

// NewEngine builds a query engine.
func NewEngine(res Resolver, opts ...Option) *Engine {
	cfg := engineConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.cacheSize == 0 {
		cfg.cacheSize = DefaultPlanCacheSize
	}
	if cfg.parallelism <= 0 {
		cfg.parallelism = runtime.GOMAXPROCS(0)
	}
	e := &Engine{res: res, workers: cfg.parallelism}
	if cfg.cacheSize > 0 {
		e.cache = newPlanCache(cfg.cacheSize)
	}
	return e
}

// Instrument registers the engine's instruments on r: plan-cache hit/miss
// counters, a cache-occupancy gauge, and a query-latency histogram.
func (e *Engine) Instrument(r *obs.Registry) {
	e.obsHits = r.Counter("aqe_plan_cache_hits_total")
	e.obsMisses = r.Counter("aqe_plan_cache_misses_total")
	e.obsOccupancy = r.Gauge("aqe_plan_cache_size")
	e.obsLatency = r.Histogram("aqe_query_seconds", obs.DefLatencyBuckets...)
}

// PlanCacheStats reports cache hit/miss totals and current occupancy (all
// zero when the cache is disabled).
func (e *Engine) PlanCacheStats() (hits, misses uint64, size int) {
	if e.cache == nil {
		return 0, 0, 0
	}
	return e.cache.stats()
}

// Prepare returns the compiled plan for src, from cache when possible.
func (e *Engine) Prepare(src string) (*Plan, error) {
	if e.cache != nil {
		if p, ok := e.cache.get(src); ok {
			e.obsHits.Inc()
			return p, nil
		}
		e.obsMisses.Inc()
	}
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	p, err := compileQuery(src, q)
	if err != nil {
		return nil, err
	}
	if e.cache != nil {
		e.cache.put(src, p)
		_, _, size := e.cache.stats()
		e.obsOccupancy.Set(float64(size))
	}
	return p, nil
}

// Query parses (or recalls) and executes src.
func (e *Engine) Query(src string) (*Result, error) {
	p, err := e.Prepare(src)
	if err != nil {
		return nil, err
	}
	return e.ExecutePlan(p)
}

// Execute runs an already-parsed query, compiling it without touching the
// plan cache (the AST has no canonical text to key on).
func (e *Engine) Execute(q *Query) (*Result, error) {
	p, err := compileQuery("", q)
	if err != nil {
		return nil, err
	}
	return e.ExecutePlan(p)
}

// ExecutePlan runs a prepared plan. UNION branches are resolved with bounded
// parallelism — "highly parallel and decoupled access to information within
// the Apollo service" (§3.1) — and their rows concatenated in branch order.
func (e *Engine) ExecutePlan(p *Plan) (*Result, error) {
	start := time.Now()
	defer func() { e.obsLatency.ObserveDuration(time.Since(start)) }()

	n := len(p.branches)
	branchRows := make([][][]Cell, n)
	branchErrs := make([]error, n)
	workers := e.workers
	if e.Sequential {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range p.branches {
			branchRows[i], branchErrs[i] = e.execBranch(&p.branches[i])
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					branchRows[i], branchErrs[i] = e.execBranch(&p.branches[i])
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	res := &Result{Columns: p.Columns()}
	for i := range branchRows {
		if branchErrs[i] != nil {
			return nil, branchErrs[i]
		}
		res.Rows = append(res.Rows, branchRows[i]...)
	}
	return res, nil
}

// scanRange streams ex's entries in [from, to] through the zero-copy Scanner
// fast path when the executor provides one, falling back to a materializing
// Range for foreign executors (e.g. the LDMS comparison store).
func scanRange(ex score.Executor, from, to int64, fn func(telemetry.Info) bool) {
	if sc, ok := ex.(score.Scanner); ok {
		sc.ScanRange(from, to, fn)
		return
	}
	for _, in := range ex.Range(from, to) {
		if !fn(in) {
			return
		}
	}
}

// execBranch evaluates one compiled branch.
func (e *Engine) execBranch(cs *compiledSelect) ([][]Cell, error) {
	ex, err := e.res.Resolve(cs.table)
	if err != nil {
		return nil, err
	}

	// Fast path for the canonical latest-value query:
	// every item is either MAX(Timestamp) or a bare column, no WHERE.
	if cs.latest {
		info, ok := ex.Latest()
		if !ok {
			return nil, nil
		}
		return [][]Cell{rowFromProj(cs.proj, info)}, nil
	}

	// Aggregate path: one streaming pass accumulates every aggregate; no
	// row materialization at all.
	if cs.hasAgg {
		var st aggState
		scanRange(ex, cs.from, cs.to, func(in telemetry.Info) bool {
			st.observe(in)
			return true
		})
		if st.n == 0 {
			return nil, nil
		}
		row := make([]Cell, len(cs.aggs))
		for i, ext := range cs.aggs {
			row[i] = ext(&st)
		}
		rows := [][]Cell{row}
		if cs.limit > 0 && len(rows) > cs.limit {
			rows = rows[:cs.limit]
		}
		return rows, nil
	}

	// Row path. Ascending scans stop as soon as LIMIT rows are produced
	// (early-LIMIT cutoff); descending ones keep a ring of the newest LIMIT
	// entries and emit it reversed.
	desc := cs.order != nil && cs.order.Desc
	if !desc {
		var rows [][]Cell
		if cs.limit > 0 {
			rows = make([][]Cell, 0, cs.limit)
		}
		scanRange(ex, cs.from, cs.to, func(in telemetry.Info) bool {
			rows = append(rows, rowFromProj(cs.proj, in))
			return cs.limit == 0 || len(rows) < cs.limit
		})
		return rows, nil
	}
	if cs.limit > 0 {
		ring := make([]telemetry.Info, 0, cs.limit)
		pos := 0
		scanRange(ex, cs.from, cs.to, func(in telemetry.Info) bool {
			if len(ring) < cs.limit {
				ring = append(ring, in)
			} else {
				ring[pos] = in
				pos = (pos + 1) % cs.limit
			}
			return true
		})
		rows := make([][]Cell, 0, len(ring))
		for k := len(ring) - 1; k >= 0; k-- {
			rows = append(rows, rowFromProj(cs.proj, ring[(pos+k)%len(ring)]))
		}
		return rows, nil
	}
	var entries []telemetry.Info
	scanRange(ex, cs.from, cs.to, func(in telemetry.Info) bool {
		entries = append(entries, in)
		return true
	})
	rows := make([][]Cell, 0, len(entries))
	for i := len(entries) - 1; i >= 0; i-- {
		rows = append(rows, rowFromProj(cs.proj, entries[i]))
	}
	return rows, nil
}

// latestOnly reports whether the select list is satisfied by Latest():
// aggregates only of the form MAX(Timestamp) mixed with bare columns.
func latestOnly(items []SelectItem) bool {
	for _, it := range items {
		if it.Agg == AggNone {
			continue
		}
		if it.Agg != AggMax || it.Col != ColTimestamp {
			return false
		}
	}
	return true
}
