// Package aqe is the Apollo Query Engine (§3.1, §4.4): it parses a small
// SQL dialect — the resource-query language of the paper's evaluation — and
// resolves each SELECT branch in parallel against the Query Executors of
// SCoRe vertices. The canonical middleware query is
//
//	SELECT MAX(Timestamp), metric FROM pfs_capacity
//	UNION
//	SELECT MAX(Timestamp), metric FROM node_1_memory_capacity
//	...
//
// where query complexity = number of queried tables (UNION branches).
package aqe

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokOp // >= <= = > <
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// ErrSyntax wraps all parse errors.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements error.
func (e *SyntaxError) Error() string { return fmt.Sprintf("aqe: syntax error at %d: %s", e.Pos, e.Msg) }

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == ';':
			i++ // trailing semicolons are permitted and ignored
		case c == '>', c == '<', c == '=':
			op := string(c)
			if (c == '>' || c == '<') && i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1]))):
			start := i
			i++
			for i < len(src) && (unicode.IsDigit(rune(src[i])) || src[i] == '.') {
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_' || src[i] == '.' || src[i] == '-') {
				i++
			}
			toks = append(toks, token{tokIdent, src[start:i], start})
		default:
			return nil, &SyntaxError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

// keyword matching is case-insensitive.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
