package aqe

import (
	"container/list"
	"sync"
)

// DefaultPlanCacheSize is the prepared-plan cache capacity used when none is
// configured.
const DefaultPlanCacheSize = 128

// planCache is an LRU of prepared plans keyed on query text. Middleware
// services issue the same handful of query shapes at high rate (§3.3), so a
// small cache removes lexing, parsing, and compilation from the hot path.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses uint64
}

type cacheEntry struct {
	key  string
	plan *Plan
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// get returns the cached plan for src, promoting it to most recently used.
func (c *planCache) get(src string) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[src]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan, true
}

// put inserts a plan, evicting the least recently used entry at capacity.
func (c *planCache) put(src string, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[src]; ok {
		el.Value.(*cacheEntry).plan = p
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
	c.entries[src] = c.order.PushFront(&cacheEntry{key: src, plan: p})
}

// stats returns hit/miss totals and current occupancy.
func (c *planCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
