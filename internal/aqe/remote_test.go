package aqe

import (
	"context"
	"testing"
	"time"

	"repro/internal/stream"
	"repro/internal/telemetry"
)

// TestBusResolverOverBroker runs the engine against an in-process broker
// through the public bus surface — the exact shape the gateway and
// apolloctl use — and checks the shared plan cache serves repeat callers.
func TestBusResolverOverBroker(t *testing.T) {
	b := stream.NewBroker(0)
	defer b.Close()
	base := time.Unix(1700000000, 0).UnixNano()
	for i := 0; i < 10; i++ {
		in := telemetry.NewFact("m.cap", base+int64(i)*int64(time.Second), float64(i))
		p, err := in.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Publish(context.Background(), "m.cap", p); err != nil {
			t.Fatal(err)
		}
	}
	eng := NewEngine(BusResolver{Bus: b})

	res, err := eng.Query("SELECT MAX(Value) FROM m.cap")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].F != 9 {
		t.Fatalf("MAX(Value): got %+v", res.Rows)
	}

	// Same text from a "different principal": must be a plan-cache hit.
	if _, err := eng.Query("SELECT MAX(Value) FROM m.cap"); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := eng.PlanCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("plan cache not shared across callers: hits=%d misses=%d", hits, misses)
	}

	res, err = eng.Query("SELECT MAX(Timestamp), metric FROM m.cap")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != base+9*int64(time.Second) {
		t.Fatalf("latest: got %+v", res.Rows)
	}
}
