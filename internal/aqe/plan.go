package aqe

import (
	"fmt"

	"repro/internal/telemetry"
)

// Plan is a prepared query: the parsed AST plus per-branch compiled
// projections and aggregate extractors, so execution never re-interprets the
// select list per row. Plans are immutable and safe for concurrent reuse;
// Engine.Prepare returns cached plans keyed on the query text.
type Plan struct {
	src      string
	cols     []string
	branches []compiledSelect
}

// Columns returns the result column headers.
func (p *Plan) Columns() []string { return append([]string(nil), p.cols...) }

// Complexity returns the number of UNION branches (the x-axis of Fig. 12b).
func (p *Plan) Complexity() int { return len(p.branches) }

// projector renders one cell of a row from an Information tuple, compiled
// once per plan instead of switching on (Agg, Col) for every row.
type projector func(telemetry.Info) Cell

// aggState accumulates every aggregate of one branch in a single pass over
// the scanned entries.
type aggState struct {
	n            int64
	sum          float64
	minV, maxV   float64
	minTS, maxTS int64
	last         telemetry.Info // newest visited entry, for bare columns
}

func (st *aggState) observe(in telemetry.Info) {
	if st.n == 0 {
		st.minV, st.maxV = in.Value, in.Value
		st.minTS, st.maxTS = in.Timestamp, in.Timestamp
	} else {
		if in.Value < st.minV {
			st.minV = in.Value
		}
		if in.Value > st.maxV {
			st.maxV = in.Value
		}
		if in.Timestamp < st.minTS {
			st.minTS = in.Timestamp
		}
		if in.Timestamp > st.maxTS {
			st.maxTS = in.Timestamp
		}
	}
	st.n++
	st.sum += in.Value
	st.last = in
}

// extractor renders one cell of the aggregate row from the final state.
type extractor func(*aggState) Cell

// compiledSelect is one UNION branch with its row machinery pre-bound.
type compiledSelect struct {
	table    string
	from, to int64
	order    *OrderBy
	limit    int
	hasAgg   bool
	latest   bool // serviceable by Executor.Latest alone

	proj []projector // row projection (non-aggregate path)
	aggs []extractor // aggregate row extraction (aggregate path)
}

// compileQuery validates and compiles a parsed query. Aggregate/column
// mismatches (e.g. AVG(Timestamp)) are rejected here, at prepare time,
// instead of surfacing per execution.
func compileQuery(src string, q *Query) (*Plan, error) {
	if len(q.Selects) == 0 {
		return nil, errEmptyQuery
	}
	arity := len(q.Selects[0].Items)
	for _, s := range q.Selects {
		if len(s.Items) != arity {
			return nil, errUnionArity
		}
	}
	p := &Plan{src: src, cols: make([]string, arity), branches: make([]compiledSelect, 0, len(q.Selects))}
	for i, it := range q.Selects[0].Items {
		p.cols[i] = it.Label()
	}
	for _, s := range q.Selects {
		cs, err := compileSelect(s)
		if err != nil {
			return nil, err
		}
		p.branches = append(p.branches, cs)
	}
	return p, nil
}

func compileSelect(s SelectStmt) (compiledSelect, error) {
	cs := compiledSelect{table: s.Table, order: s.Order, limit: s.Limit, from: -1 << 62, to: 1 << 62}
	if s.Where != nil {
		cs.from, cs.to = s.Where.From, s.Where.To
	}
	for _, it := range s.Items {
		if it.Agg != AggNone {
			cs.hasAgg = true
			break
		}
	}
	cs.latest = s.Where == nil && s.Order == nil && s.Limit == 0 && cs.hasAgg && latestOnly(s.Items)

	cs.proj = make([]projector, len(s.Items))
	if cs.hasAgg {
		cs.aggs = make([]extractor, len(s.Items))
	}
	for i, it := range s.Items {
		cs.proj[i] = compileProjector(it)
		if cs.hasAgg {
			ext, err := compileExtractor(it)
			if err != nil {
				return cs, err
			}
			cs.aggs[i] = ext
		}
	}
	return cs, nil
}

// compileProjector binds a select item to its tuple field once.
func compileProjector(it SelectItem) projector {
	switch it.Col {
	case ColTimestamp:
		return func(in telemetry.Info) Cell { return intCell(in.Timestamp) }
	case ColMetric:
		return func(in telemetry.Info) Cell { return floatCell(in.Value) }
	case ColSource:
		return func(in telemetry.Info) Cell { return strCell(in.Source.String()) }
	default:
		return func(telemetry.Info) Cell { return intCell(1) }
	}
}

// compileExtractor binds an aggregate item to its aggState field once,
// rejecting unsupported combinations at compile time.
func compileExtractor(it SelectItem) (extractor, error) {
	switch it.Agg {
	case AggNone:
		// Bare columns alongside aggregates take the newest entry's value
		// (the paper's query pairs MAX(Timestamp) with metric).
		proj := compileProjector(it)
		return func(st *aggState) Cell { return proj(st.last) }, nil
	case AggCount:
		return func(st *aggState) Cell { return intCell(st.n) }, nil
	case AggMax:
		if it.Col == ColTimestamp {
			return func(st *aggState) Cell { return intCell(st.maxTS) }, nil
		}
		return func(st *aggState) Cell { return floatCell(st.maxV) }, nil
	case AggMin:
		if it.Col == ColTimestamp {
			return func(st *aggState) Cell { return intCell(st.minTS) }, nil
		}
		return func(st *aggState) Cell { return floatCell(st.minV) }, nil
	case AggAvg, AggSum:
		if it.Col != ColMetric {
			return nil, fmt.Errorf("aqe: %s supports only the metric column", it.Agg)
		}
		if it.Agg == AggAvg {
			return func(st *aggState) Cell { return floatCell(st.sum / float64(st.n)) }, nil
		}
		return func(st *aggState) Cell { return floatCell(st.sum) }, nil
	default:
		return nil, fmt.Errorf("aqe: unsupported aggregate %v", it.Agg)
	}
}

// rowFromProj renders one row through compiled projectors.
func rowFromProj(proj []projector, in telemetry.Info) []Cell {
	row := make([]Cell, len(proj))
	for i, p := range proj {
		row[i] = p(in)
	}
	return row
}
