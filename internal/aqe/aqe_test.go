package aqe

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/score"
	"repro/internal/telemetry"
)

// fakeExec is an in-memory Executor.
type fakeExec struct {
	id      telemetry.MetricID
	entries []telemetry.Info
}

func (f *fakeExec) Metric() telemetry.MetricID { return f.id }
func (f *fakeExec) Latest() (telemetry.Info, bool) {
	if len(f.entries) == 0 {
		return telemetry.Info{}, false
	}
	return f.entries[len(f.entries)-1], true
}
func (f *fakeExec) Range(from, to int64) []telemetry.Info {
	var out []telemetry.Info
	for _, e := range f.entries {
		if e.Timestamp >= from && e.Timestamp <= to {
			out = append(out, e)
		}
	}
	return out
}

type mapResolver map[string]*fakeExec

func (m mapResolver) Resolve(table string) (score.Executor, error) {
	if e, ok := m[table]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, table)
}

func fixture() mapResolver {
	caps := &fakeExec{id: "pfs_capacity"}
	for i := 1; i <= 5; i++ {
		caps.entries = append(caps.entries, telemetry.NewFact("pfs_capacity", int64(i*100), float64(1000-i*10)))
	}
	mem := &fakeExec{id: "node_1_memory"}
	mem.entries = append(mem.entries, telemetry.NewPredictedFact("node_1_memory", 500, 42))
	return mapResolver{"pfs_capacity": caps, "node_1_memory": mem, "empty": {id: "empty"}}
}

func TestParseCanonicalQuery(t *testing.T) {
	q, err := Parse(`SELECT MAX(Timestamp), metric FROM pfs_capacity
UNION
SELECT MAX(Timestamp), metric FROM node_1_memory;`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Complexity() != 2 {
		t.Fatalf("complexity=%d", q.Complexity())
	}
	if q.Selects[0].Table != "pfs_capacity" || q.Selects[1].Table != "node_1_memory" {
		t.Fatalf("tables=%v,%v", q.Selects[0].Table, q.Selects[1].Table)
	}
	it := q.Selects[0].Items
	if len(it) != 2 || it[0].Agg != AggMax || it[0].Col != ColTimestamp || it[1].Agg != AggNone || it[1].Col != ColMetric {
		t.Fatalf("items=%+v", it)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT metric",
		"SELECT metric FROM",
		"SELECT bogus FROM t",
		"SELECT MAX(bogus) FROM t",
		"SELECT MAX(Timestamp FROM t",
		"SELECT metric FROM t WHERE value = 1",
		"SELECT metric FROM t WHERE Timestamp !! 3",
		"SELECT metric FROM t WHERE Timestamp BETWEEN x AND y",
		"SELECT metric FROM t garbage",
		"SELECT metric FROM t WHERE Timestamp BETWEEN 1 2",
		"SELECT metric FROM t @",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("%q: non-syntax error %v", src, err)
			}
		}
	}
}

func TestParseWhereForms(t *testing.T) {
	cases := []struct {
		src      string
		from, to int64
	}{
		{"SELECT metric FROM t WHERE Timestamp BETWEEN 10 AND 20", 10, 20},
		{"SELECT metric FROM t WHERE Timestamp >= 10 AND Timestamp <= 20", 10, 20},
		{"SELECT metric FROM t WHERE Timestamp > 9 AND Timestamp < 21", 10, 20},
		{"SELECT metric FROM t WHERE Timestamp = 15", 15, 15},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		w := q.Selects[0].Where
		if w == nil || w.From != c.from || w.To != c.to {
			t.Fatalf("%q: where=%+v", c.src, w)
		}
	}
}

func TestParseUnionAll(t *testing.T) {
	q, err := Parse("SELECT metric FROM a UNION ALL SELECT metric FROM b")
	if err != nil || q.Complexity() != 2 {
		t.Fatalf("q=%v err=%v", q, err)
	}
}

func TestLatestQuery(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT MAX(Timestamp), metric FROM pfs_capacity")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Columns[0] != "MAX(Timestamp)" || res.Columns[1] != "metric" {
		t.Fatalf("cols=%v", res.Columns)
	}
	if res.Rows[0][0].Int != 500 || res.Rows[0][1].F != 950 {
		t.Fatalf("row=%v", res.Rows[0])
	}
}

func TestUnionParallelOrder(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query(`SELECT MAX(Timestamp), metric FROM pfs_capacity
		UNION SELECT MAX(Timestamp), metric FROM node_1_memory`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%d", len(res.Rows))
	}
	// Branch order preserved.
	if res.Rows[0][1].F != 950 || res.Rows[1][1].F != 42 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestSequentialMatchesParallel(t *testing.T) {
	q := `SELECT MAX(Timestamp), metric FROM pfs_capacity UNION SELECT MAX(Timestamp), metric FROM node_1_memory`
	par := NewEngine(fixture())
	seq := NewEngine(fixture())
	seq.Sequential = true
	r1, err := par.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := seq.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r1) != fmt.Sprint(r2) {
		t.Fatalf("parallel %v != sequential %v", r1, r2)
	}
}

func TestRangeScan(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT Timestamp, metric FROM pfs_capacity WHERE Timestamp BETWEEN 200 AND 400")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][0].Int != 200 || res.Rows[2][0].Int != 400 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT COUNT(*), AVG(metric), SUM(metric), MIN(metric), MAX(metric), MIN(Timestamp) FROM pfs_capacity WHERE Timestamp >= 100")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].Int != 5 {
		t.Fatalf("count=%v", row[0])
	}
	if row[1].F != 970 { // avg of 990..950
		t.Fatalf("avg=%v", row[1])
	}
	if row[2].F != 4850 {
		t.Fatalf("sum=%v", row[2])
	}
	if row[3].F != 950 || row[4].F != 990 {
		t.Fatalf("min/max=%v/%v", row[3], row[4])
	}
	if row[5].Int != 100 {
		t.Fatalf("min ts=%v", row[5])
	}
}

func TestSourceColumn(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT metric, source FROM node_1_memory")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].Str != "predicted" {
		t.Fatalf("source=%v", res.Rows[0][1])
	}
}

func TestEmptyTableYieldsNoRows(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT MAX(Timestamp), metric FROM empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestNoSuchTable(t *testing.T) {
	e := NewEngine(fixture())
	if _, err := e.Query("SELECT metric FROM ghost"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err=%v", err)
	}
}

func TestArityMismatch(t *testing.T) {
	e := NewEngine(fixture())
	if _, err := e.Query("SELECT metric FROM pfs_capacity UNION SELECT metric, Timestamp FROM node_1_memory"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestAvgRequiresMetric(t *testing.T) {
	e := NewEngine(fixture())
	if _, err := e.Query("SELECT AVG(Timestamp) FROM pfs_capacity WHERE Timestamp >= 0"); err == nil {
		t.Fatal("AVG(Timestamp) accepted")
	}
}

func TestCellString(t *testing.T) {
	if intCell(5).String() != "5" || floatCell(2.5).String() != "2.5" || strCell("x").String() != "x" {
		t.Fatal("cell rendering wrong")
	}
}

func TestResultRendering(t *testing.T) {
	e := NewEngine(fixture())
	res, _ := e.Query("SELECT MAX(Timestamp), metric FROM pfs_capacity")
	var sb strings.Builder
	for _, c := range res.Columns {
		sb.WriteString(c + "\t")
	}
	for _, row := range res.Rows {
		for _, c := range row {
			sb.WriteString(c.String() + "\t")
		}
	}
	out := sb.String()
	if !strings.Contains(out, "500") || !strings.Contains(out, "950") {
		t.Fatalf("rendered=%q", out)
	}
}

func BenchmarkParse(b *testing.B) {
	src := "SELECT MAX(Timestamp), metric FROM pfs_capacity UNION SELECT MAX(Timestamp), metric FROM node_1_memory UNION SELECT MAX(Timestamp), metric FROM node_2_availability"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatestQuery(b *testing.B) {
	e := NewEngine(fixture())
	q, err := Parse("SELECT MAX(Timestamp), metric FROM pfs_capacity")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}
