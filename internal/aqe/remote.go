package aqe

import (
	"context"

	"repro/internal/score"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// BusResolver resolves AQE tables against a stream.Bus, so the engine runs
// over a remote fabric (a dialed stream.Client) or directly over an
// in-process Broker — the resolver apolloctl and the HTTP gateway share.
// Each table maps to the topic of the same name; Latest and Range are
// answered from the topic's retained ring.
//
// One Engine over a BusResolver is safe for concurrent use: plans are
// immutable once compiled and the prepared-plan LRU is internally locked, so
// the gateway serves every principal from a single shared plan cache — a
// query prepared for one principal is a cache hit for all others.
type BusResolver struct {
	// Bus serves Latest/Range; both stream.Broker and stream.Client qualify.
	Bus stream.Bus
}

// Resolve implements Resolver.
func (r BusResolver) Resolve(table string) (score.Executor, error) {
	return busExecutor{bus: r.Bus, topic: table}, nil
}

// busExecutor adapts one topic to the score.Executor interface.
type busExecutor struct {
	bus   stream.Bus
	topic string
}

// Metric implements score.Executor.
func (x busExecutor) Metric() telemetry.MetricID { return telemetry.MetricID(x.topic) }

// Latest implements score.Executor.
func (x busExecutor) Latest() (telemetry.Info, bool) {
	e, err := x.bus.Latest(context.Background(), x.topic)
	if err != nil {
		return telemetry.Info{}, false
	}
	var in telemetry.Info
	if err := in.UnmarshalBinary(e.Payload); err != nil {
		return telemetry.Info{}, false
	}
	return in, true
}

// Range implements score.Executor, materializing the retained entries whose
// timestamps fall in [from, to].
func (x busExecutor) Range(from, to int64) []telemetry.Info {
	entries, err := x.bus.Range(context.Background(), x.topic, 1, 1<<62, 0)
	if err != nil {
		return nil
	}
	var out []telemetry.Info
	for _, e := range entries {
		var in telemetry.Info
		if err := in.UnmarshalBinary(e.Payload); err != nil {
			continue
		}
		if in.Timestamp >= from && in.Timestamp <= to {
			out = append(out, in)
		}
	}
	return out
}
