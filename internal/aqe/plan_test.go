package aqe

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/score"
	"repro/internal/telemetry"
)

// scanExec wraps fakeExec with a Scanner implementation that counts visited
// entries, to observe the streaming fast path and early-LIMIT cutoff.
type scanExec struct {
	fakeExec
	visited atomic.Int64
}

func (s *scanExec) ScanRange(from, to int64, fn func(telemetry.Info) bool) {
	for _, e := range s.entries {
		if e.Timestamp < from || e.Timestamp > to {
			continue
		}
		s.visited.Add(1)
		if !fn(e) {
			return
		}
	}
}

var _ score.Scanner = (*scanExec)(nil)

type scanResolver map[string]*scanExec

func (m scanResolver) Resolve(table string) (score.Executor, error) {
	if e, ok := m[table]; ok {
		return e, nil
	}
	return nil, ErrNoSuchTable
}

func scanFixture(n int) scanResolver {
	ex := &scanExec{fakeExec: fakeExec{id: "t"}}
	for i := 0; i < n; i++ {
		ex.entries = append(ex.entries, telemetry.NewFact("t", int64(i), float64(i)))
	}
	return scanResolver{"t": ex}
}

func TestPlanCacheHitsAndMisses(t *testing.T) {
	e := NewEngine(fixture())
	const src = "SELECT MAX(Timestamp), metric FROM pfs_capacity"
	p1, err := e.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("second Prepare did not return the cached plan")
	}
	hits, misses, size := e.PlanCacheStats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("stats hits=%d misses=%d size=%d, want 1/1/1", hits, misses, size)
	}
	// Query goes through the same cache.
	if _, err := e.Query(src); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ = e.PlanCacheStats(); hits != 2 {
		t.Fatalf("hits=%d after Query, want 2", hits)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	e := NewEngine(fixture(), WithPlanCache(-1))
	const src = "SELECT metric FROM pfs_capacity"
	p1, err := e.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("disabled cache returned a shared plan")
	}
	if hits, misses, size := e.PlanCacheStats(); hits != 0 || misses != 0 || size != 0 {
		t.Fatalf("disabled cache reported stats %d/%d/%d", hits, misses, size)
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	e := NewEngine(fixture(), WithPlanCache(2))
	qa := "SELECT metric FROM pfs_capacity"
	qb := "SELECT Timestamp FROM pfs_capacity"
	qc := "SELECT source FROM pfs_capacity"
	for _, src := range []string{qa, qb, qa, qc} { // qc evicts qb (LRU)
		if _, err := e.Prepare(src); err != nil {
			t.Fatal(err)
		}
	}
	_, missesBefore, size := e.PlanCacheStats()
	if size != 2 {
		t.Fatalf("size=%d, want 2", size)
	}
	if _, err := e.Prepare(qa); err != nil { // still cached
		t.Fatal(err)
	}
	if _, misses, _ := e.PlanCacheStats(); misses != missesBefore {
		t.Fatalf("qa was evicted: misses %d -> %d", missesBefore, misses)
	}
	if _, err := e.Prepare(qb); err != nil { // evicted, re-misses
		t.Fatal(err)
	}
	if _, misses, _ := e.PlanCacheStats(); misses != missesBefore+1 {
		t.Fatalf("qb should have been evicted; misses=%d want %d", misses, missesBefore+1)
	}
}

func TestCompileTimeAggregateValidation(t *testing.T) {
	e := NewEngine(fixture())
	// AVG(Timestamp) is rejected at prepare time, even over an empty table.
	if _, err := e.Prepare("SELECT AVG(Timestamp) FROM empty"); err == nil {
		t.Fatal("AVG(Timestamp) compiled")
	}
	if _, err := e.Query("SELECT SUM(source) FROM empty WHERE Timestamp >= 0"); err == nil {
		t.Fatal("SUM(source) accepted")
	}
}

func TestEarlyLimitStopsScan(t *testing.T) {
	res := scanFixture(1000)
	e := NewEngine(res)
	out, err := e.Query("SELECT Timestamp FROM t WHERE Timestamp >= 0 LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 {
		t.Fatalf("rows=%d want 3", len(out.Rows))
	}
	if v := res["t"].visited.Load(); v != 3 {
		t.Fatalf("scan visited %d entries for LIMIT 3, want 3", v)
	}
}

func TestDescLimitKeepsNewest(t *testing.T) {
	res := scanFixture(10)
	e := NewEngine(res)
	out, err := e.Query("SELECT Timestamp FROM t WHERE Timestamp >= 0 ORDER BY Timestamp DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, r := range out.Rows {
		got = append(got, r[0].Int)
	}
	if !reflect.DeepEqual(got, []int64{9, 8, 7}) {
		t.Fatalf("rows=%v want [9 8 7]", got)
	}
}

// TestScannerMatchesRangeFallback cross-checks every query shape between a
// Scanner-backed executor and the plain Range fallback.
func TestScannerMatchesRangeFallback(t *testing.T) {
	entries := make([]telemetry.Info, 0, 40)
	for i := 0; i < 40; i++ {
		entries = append(entries, telemetry.NewFact("t", int64(i*3), float64(100-i)))
	}
	withScan := scanResolver{"t": {fakeExec: fakeExec{id: "t", entries: entries}}}
	withRange := mapResolver{"t": {id: "t", entries: entries}}
	queries := []string{
		"SELECT MAX(Timestamp), metric FROM t",
		"SELECT COUNT(*), AVG(metric), SUM(metric), MIN(metric), MAX(metric) FROM t WHERE Timestamp >= 30",
		"SELECT Timestamp, metric FROM t WHERE Timestamp BETWEEN 10 AND 60",
		"SELECT Timestamp FROM t WHERE Timestamp >= 0 ORDER BY Timestamp DESC",
		"SELECT Timestamp FROM t WHERE Timestamp >= 0 ORDER BY Timestamp DESC LIMIT 5",
		"SELECT Timestamp FROM t WHERE Timestamp >= 0 LIMIT 7",
		"SELECT MIN(Timestamp), MAX(Timestamp) FROM t WHERE Timestamp >= 200", // empty window
	}
	es, er := NewEngine(withScan), NewEngine(withRange)
	for _, src := range queries {
		a, err := es.Query(src)
		if err != nil {
			t.Fatalf("%q scanner: %v", src, err)
		}
		b, err := er.Query(src)
		if err != nil {
			t.Fatalf("%q fallback: %v", src, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%q: scanner %+v != fallback %+v", src, a, b)
		}
	}
}

func TestBoundedParallelism(t *testing.T) {
	// Many branches with a parallelism bound of 2 must still produce rows in
	// branch order.
	res := fixture()
	e := NewEngine(res, WithParallelism(2))
	src := "SELECT MAX(Timestamp), metric FROM pfs_capacity"
	for i := 0; i < 5; i++ {
		src += " UNION SELECT MAX(Timestamp), metric FROM node_1_memory"
	}
	out, err := e.Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 6 {
		t.Fatalf("rows=%d want 6", len(out.Rows))
	}
	if out.Rows[0][0].Int != 500 || out.Rows[1][0].Int != 500 {
		t.Fatalf("unexpected rows %v", out.Rows)
	}
	for i := 1; i < 6; i++ {
		if out.Rows[i][1].F != 42 {
			t.Fatalf("branch order lost: row %d = %v", i, out.Rows[i])
		}
	}
}

func TestEngineInstrumentation(t *testing.T) {
	r := obs.NewRegistry()
	e := NewEngine(fixture())
	e.Instrument(r)
	const src = "SELECT metric FROM pfs_capacity"
	for i := 0; i < 3; i++ {
		if _, err := e.Query(src); err != nil {
			t.Fatal(err)
		}
	}
	if v := r.Counter("aqe_plan_cache_hits_total").Value(); v != 2 {
		t.Fatalf("hits counter=%d want 2", v)
	}
	if v := r.Counter("aqe_plan_cache_misses_total").Value(); v != 1 {
		t.Fatalf("misses counter=%d want 1", v)
	}
	if v := r.Gauge("aqe_plan_cache_size").Value(); v != 1 {
		t.Fatalf("occupancy gauge=%v want 1", v)
	}
	if c := r.Histogram("aqe_query_seconds", obs.DefLatencyBuckets...).Count(); c != 3 {
		t.Fatalf("latency histogram count=%d want 3", c)
	}
}

// benchSrc is the paper's canonical middleware query: latest value of
// several streams, one UNION branch per stream. Execution is O(1) per branch
// (the Latest fast path), so the cold/cached pair isolates what the plan
// cache removes: lexing, parsing, and compilation.
func benchQueryFixture() (mapResolver, string) {
	res := mapResolver{}
	src := ""
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("node_%d_capacity", i)
		ex := &fakeExec{id: telemetry.MetricID(name)}
		for ts := int64(1); ts <= 16; ts++ {
			ex.entries = append(ex.entries, telemetry.NewFact(ex.id, ts*100, float64(ts)))
		}
		res[name] = ex
		if i > 0 {
			src += " UNION "
		}
		src += "SELECT MAX(Timestamp), metric FROM " + name
	}
	return res, src
}

func BenchmarkQueryColdParse(b *testing.B) {
	res, src := benchQueryFixture()
	e := NewEngine(res, WithPlanCache(-1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryCachedPlan(b *testing.B) {
	res, src := benchQueryFixture()
	e := NewEngine(res)
	if _, err := e.Query(src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryAggregateScan tracks the streaming aggregate path over a
// large window (plan cached; dominated by the scan itself).
func BenchmarkQueryAggregateScan(b *testing.B) {
	e := NewEngine(scanFixture(4096))
	const src = "SELECT COUNT(*), AVG(metric), MIN(metric), MAX(metric) FROM t WHERE Timestamp >= 0"
	if _, err := e.Query(src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Query(src); err != nil {
			b.Fatal(err)
		}
	}
}
