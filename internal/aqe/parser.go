package aqe

import (
	"strconv"
	"strings"
)

// AggKind is an aggregate function in the select list.
type AggKind int

// Aggregates.
const (
	AggNone AggKind = iota
	AggMax
	AggMin
	AggAvg
	AggSum
	AggCount
)

// String names the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	case AggAvg:
		return "AVG"
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	default:
		return ""
	}
}

// ColKind is a column reference.
type ColKind int

// Columns of every SCoRe stream: the Information tuple
// (timestamp, fact/insight value, predicted/measured).
const (
	ColTimestamp ColKind = iota
	ColMetric            // the value
	ColSource            // 0 measured, 1 predicted
	ColStar              // only under COUNT(*)
)

// String names the column.
func (c ColKind) String() string {
	switch c {
	case ColTimestamp:
		return "Timestamp"
	case ColMetric:
		return "metric"
	case ColSource:
		return "source"
	case ColStar:
		return "*"
	default:
		return "?"
	}
}

// SelectItem is one entry in a select list.
type SelectItem struct {
	Agg AggKind
	Col ColKind
}

// Label renders the item as a result column header.
func (s SelectItem) Label() string {
	if s.Agg == AggNone {
		return s.Col.String()
	}
	return s.Agg.String() + "(" + s.Col.String() + ")"
}

// TimeRange is an inclusive timestamp filter.
type TimeRange struct {
	From, To int64
}

// OrderBy describes an ORDER BY Timestamp clause.
type OrderBy struct {
	Desc bool
}

// SelectStmt is one branch of a UNION query.
type SelectStmt struct {
	Items []SelectItem
	Table string
	Where *TimeRange
	// Order, if non-nil, sorts the branch's rows by Timestamp.
	Order *OrderBy
	// Limit caps the branch's row count; 0 means unlimited.
	Limit int
}

// Query is a parsed UNION of SELECT statements. Complexity (the x-axis of
// Fig. 12b) is the number of branches.
type Query struct {
	Selects []SelectStmt
}

// Complexity returns the number of queried tables.
func (q *Query) Complexity() int { return len(q.Selects) }

// Parse compiles the query text.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}
	for {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		q.Selects = append(q.Selects, sel)
		if isKeyword(p.peek(), "UNION") {
			p.next()
			// Accept UNION ALL as a synonym.
			if isKeyword(p.peek(), "ALL") {
				p.next()
			}
			continue
		}
		break
	}
	if p.peek().kind != tokEOF {
		return nil, &SyntaxError{Pos: p.peek().pos, Msg: "trailing input after query"}
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !isKeyword(t, kw) {
		return &SyntaxError{Pos: t.pos, Msg: "expected " + kw}
	}
	return nil
}

func (p *parser) parseSelect() (SelectStmt, error) {
	var s SelectStmt
	if err := p.expectKeyword("SELECT"); err != nil {
		return s, err
	}
	for {
		item, err := p.parseItem()
		if err != nil {
			return s, err
		}
		s.Items = append(s.Items, item)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return s, err
	}
	tbl := p.next()
	if tbl.kind != tokIdent {
		return s, &SyntaxError{Pos: tbl.pos, Msg: "expected table name"}
	}
	s.Table = tbl.text
	if isKeyword(p.peek(), "WHERE") {
		p.next()
		w, err := p.parseWhere()
		if err != nil {
			return s, err
		}
		s.Where = w
	}
	if isKeyword(p.peek(), "ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return s, err
		}
		col := p.next()
		if !isKeyword(col, "Timestamp") {
			return s, &SyntaxError{Pos: col.pos, Msg: "ORDER BY supports only Timestamp"}
		}
		o := &OrderBy{}
		if isKeyword(p.peek(), "DESC") {
			p.next()
			o.Desc = true
		} else if isKeyword(p.peek(), "ASC") {
			p.next()
		}
		s.Order = o
	}
	if isKeyword(p.peek(), "LIMIT") {
		p.next()
		n, err := p.parseNumber()
		if err != nil {
			return s, err
		}
		if n < 1 {
			return s, &SyntaxError{Pos: p.peek().pos, Msg: "LIMIT must be positive"}
		}
		s.Limit = int(n)
	}
	return s, nil
}

func (p *parser) parseItem() (SelectItem, error) {
	t := p.next()
	if t.kind != tokIdent {
		return SelectItem{}, &SyntaxError{Pos: t.pos, Msg: "expected column or aggregate"}
	}
	agg := AggNone
	switch strings.ToUpper(t.text) {
	case "MAX":
		agg = AggMax
	case "MIN":
		agg = AggMin
	case "AVG":
		agg = AggAvg
	case "SUM":
		agg = AggSum
	case "COUNT":
		agg = AggCount
	}
	if agg != AggNone && p.peek().kind == tokLParen {
		p.next()
		col, err := p.parseCol(agg == AggCount)
		if err != nil {
			return SelectItem{}, err
		}
		if t := p.next(); t.kind != tokRParen {
			return SelectItem{}, &SyntaxError{Pos: t.pos, Msg: "expected )"}
		}
		return SelectItem{Agg: agg, Col: col}, nil
	}
	// Bare column.
	col, err := colByName(t)
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) parseCol(allowStar bool) (ColKind, error) {
	t := p.next()
	if allowStar && t.kind == tokStar {
		return ColStar, nil
	}
	if t.kind != tokIdent {
		return 0, &SyntaxError{Pos: t.pos, Msg: "expected column"}
	}
	return colByName(t)
}

func colByName(t token) (ColKind, error) {
	switch strings.ToLower(t.text) {
	case "timestamp":
		return ColTimestamp, nil
	case "metric", "value":
		return ColMetric, nil
	case "source":
		return ColSource, nil
	default:
		return 0, &SyntaxError{Pos: t.pos, Msg: "unknown column " + t.text}
	}
}

// parseWhere accepts
//
//	Timestamp BETWEEN a AND b
//	Timestamp >= a [AND Timestamp <= b]
//	Timestamp <= b [AND Timestamp >= a]
func (p *parser) parseWhere() (*TimeRange, error) {
	w := &TimeRange{From: -1 << 62, To: 1 << 62}
	if err := p.parseCond(w); err != nil {
		return nil, err
	}
	if isKeyword(p.peek(), "AND") {
		p.next()
		if err := p.parseCond(w); err != nil {
			return nil, err
		}
	}
	return w, nil
}

func (p *parser) parseCond(w *TimeRange) error {
	t := p.next()
	if !isKeyword(t, "Timestamp") {
		return &SyntaxError{Pos: t.pos, Msg: "WHERE supports only Timestamp conditions"}
	}
	op := p.next()
	if isKeyword(op, "BETWEEN") {
		lo, err := p.parseNumber()
		if err != nil {
			return err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return err
		}
		hi, err := p.parseNumber()
		if err != nil {
			return err
		}
		w.From, w.To = lo, hi
		return nil
	}
	if op.kind != tokOp {
		return &SyntaxError{Pos: op.pos, Msg: "expected comparison or BETWEEN"}
	}
	n, err := p.parseNumber()
	if err != nil {
		return err
	}
	switch op.text {
	case ">=":
		w.From = n
	case ">":
		w.From = n + 1
	case "<=":
		w.To = n
	case "<":
		w.To = n - 1
	case "=":
		w.From, w.To = n, n
	default:
		return &SyntaxError{Pos: op.pos, Msg: "unsupported operator " + op.text}
	}
	return nil
}

func (p *parser) parseNumber() (int64, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, &SyntaxError{Pos: t.pos, Msg: "expected number"}
	}
	v, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, &SyntaxError{Pos: t.pos, Msg: "bad number " + t.text}
	}
	return v, nil
}
