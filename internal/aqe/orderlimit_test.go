package aqe

import "testing"

func TestOrderByDescLimit(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT Timestamp, metric FROM pfs_capacity ORDER BY Timestamp DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows=%v", res.Rows)
	}
	if res.Rows[0][0].Int != 500 || res.Rows[1][0].Int != 400 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestOrderByAscExplicit(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT Timestamp FROM pfs_capacity ORDER BY Timestamp ASC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].Int != 100 || res.Rows[2][0].Int != 300 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestOrderByWithWhere(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT Timestamp FROM pfs_capacity WHERE Timestamp BETWEEN 200 AND 500 ORDER BY Timestamp DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 500 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestLimitWithoutOrder(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT metric FROM pfs_capacity LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].F != 990 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestLimitLargerThanRows(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT metric FROM pfs_capacity LIMIT 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestOrderLimitInUnion(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query(`SELECT Timestamp, metric FROM pfs_capacity ORDER BY Timestamp DESC LIMIT 1
		UNION SELECT Timestamp, metric FROM node_1_memory LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 500 || res.Rows[1][1].F != 42 {
		t.Fatalf("rows=%v", res.Rows)
	}
}

func TestOrderLimitErrors(t *testing.T) {
	bad := []string{
		"SELECT metric FROM t ORDER Timestamp",
		"SELECT metric FROM t ORDER BY metric",
		"SELECT metric FROM t LIMIT 0",
		"SELECT metric FROM t LIMIT x",
		"SELECT metric FROM t ORDER BY",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestAggregateWithLimit(t *testing.T) {
	e := NewEngine(fixture())
	res, err := e.Query("SELECT COUNT(*) FROM pfs_capacity WHERE Timestamp >= 0 LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 5 {
		t.Fatalf("rows=%v", res.Rows)
	}
}
