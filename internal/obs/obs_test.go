package obs

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if r.Counter("c_total") != c {
		t.Fatal("Counter did not return the registered instance")
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				g.Add(1)
				g.Add(-0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per)*0.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Fatalf("gauge after Set = %v", got)
	}
}

func TestHistogramBucketsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", 0.01, 0.1, 1)
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h_seconds"]
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Sum-5.555) > 1e-9 {
		t.Fatalf("sum = %v", s.Sum)
	}
	wantCum := []uint64{1, 2, 3, 4} // cumulative per bucket, +Inf last
	if len(s.Buckets) != 4 {
		t.Fatalf("buckets = %d", len(s.Buckets))
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket should be +Inf")
	}
}

func TestHistogramBoundaryLandsInBucket(t *testing.T) {
	h := NewRegistry().Histogram("h", 1, 2)
	h.Observe(1) // exactly on a bound: counts as <= 1
	if got := h.snapshot().Buckets[0].Count; got != 1 {
		t.Fatalf("observation on bound not in its bucket: %d", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewRegistry().Histogram("h_seconds")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				h.ObserveDuration(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Buckets[len(s.Buckets)-1].Count != s.Count {
		t.Fatal("+Inf bucket must equal total count")
	}
	if math.Abs(s.Sum-float64(workers*per)*0.001) > 1e-6 {
		t.Fatalf("sum = %v", s.Sum)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestName(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Fatalf("Name no labels = %q", got)
	}
	got := Name("x_total", "metric", `a"b\c`)
	want := `x_total{metric="a\"b\\c"}`
	if got != want {
		t.Fatalf("Name = %q, want %q", got, want)
	}
	base, labels := splitName(got)
	if base != "x_total" || labels != `metric="a\"b\\c"` {
		t.Fatalf("splitName = %q / %q", base, labels)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Add(1)
	s := r.Snapshot()
	c.Add(9)
	if s.Counter("c_total") != 1 {
		t.Fatal("snapshot must not track later increments")
	}
	if r.Snapshot().Counter("c_total") != 10 {
		t.Fatal("registry must keep counting")
	}
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("apollo_pub_total", "metric", "m1")).Add(3)
	r.Counter(Name("apollo_pub_total", "metric", "m2")).Add(4)
	r.Gauge("apollo_backlog").Set(7)
	r.Histogram("apollo_flush_seconds", 0.1, 1).Observe(0.05)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE apollo_pub_total counter\n",
		`apollo_pub_total{metric="m1"} 3` + "\n",
		`apollo_pub_total{metric="m2"} 4` + "\n",
		"# TYPE apollo_backlog gauge\n",
		"apollo_backlog 7\n",
		"# TYPE apollo_flush_seconds histogram\n",
		`apollo_flush_seconds_bucket{le="0.1"} 1` + "\n",
		`apollo_flush_seconds_bucket{le="+Inf"} 1` + "\n",
		"apollo_flush_seconds_sum 0.05\n",
		"apollo_flush_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// The TYPE header must precede the first sample of its base name and
	// appear exactly once.
	if strings.Count(out, "# TYPE apollo_pub_total counter") != 1 {
		t.Fatalf("duplicate TYPE line:\n%s", out)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Inc()
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "hits_total 1") {
		t.Fatalf("body = %q", body)
	}
}

func TestDefaultRegistryIsStable(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return one process-wide registry")
	}
}
