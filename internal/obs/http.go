package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteText serializes a snapshot of the registry in the Prometheus text
// exposition format (version 0.0.4): one # TYPE line per instrument base
// name, then sorted sample lines. Histograms emit cumulative _bucket{le=...}
// samples plus _sum and _count.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	typed := make(map[string]bool)

	names := sortedKeys(s.Counters)
	for _, name := range names {
		base, labels := splitName(name)
		if err := writeType(w, typed, base, "counter"); err != nil {
			return err
		}
		if err := writeSample(w, base, labels, float64(s.Counters[name])); err != nil {
			return err
		}
	}

	names = sortedKeys(s.Gauges)
	for _, name := range names {
		base, labels := splitName(name)
		if err := writeType(w, typed, base, "gauge"); err != nil {
			return err
		}
		if err := writeSample(w, base, labels, s.Gauges[name]); err != nil {
			return err
		}
	}

	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		base, labels := splitName(name)
		if err := writeType(w, typed, base, "histogram"); err != nil {
			return err
		}
		h := s.Histograms[name]
		for _, b := range h.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = formatFloat(b.UpperBound)
			}
			bl := `le="` + le + `"`
			if labels != "" {
				bl = labels + "," + bl
			}
			if err := writeSample(w, base+"_bucket", bl, float64(b.Count)); err != nil {
				return err
			}
		}
		if err := writeSample(w, base+"_sum", labels, h.Sum); err != nil {
			return err
		}
		if err := writeSample(w, base+"_count", labels, float64(h.Count)); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeType emits the # TYPE header once per base name. Exposition is sorted
// per kind, so all samples of one base name are contiguous.
func writeType(w io.Writer, seen map[string]bool, base, kind string) error {
	if seen[base] {
		return nil
	}
	seen[base] = true
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
	return err
}

func writeSample(w io.Writer, base, labels string, v float64) error {
	var sb strings.Builder
	sb.WriteString(base)
	if labels != "" {
		sb.WriteByte('{')
		sb.WriteString(labels)
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(v))
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Handler serves the registry in the Prometheus text exposition format.
// Mount it at /metrics next to net/http/pprof for a complete introspection
// endpoint (see cmd/apollod's -metrics-addr).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
