// Package obs is Apollo's observability substrate: a stdlib-only metrics
// registry of atomic counters, gauges, and fixed-bucket histograms with
// snapshot semantics. Every subsystem on the hot path — the stream fabric,
// SCoRe vertices, the timer loop, the in-memory queues, and the archiver —
// registers its instruments here so drop counts, publish latencies, backlog
// sizes, and timer behaviour are visible outside tests (REGAL-style
// registry-driven introspection).
//
// Design rules:
//
//   - Instruments are lock-free after creation (single atomic op per event)
//     so instrumenting a hot path costs nanoseconds.
//   - All instrument methods are nil-receiver safe no-ops, so components can
//     hold optional instrument handles without branching at every call site.
//   - Names follow the Prometheus convention <subsystem>_<what>[_total];
//     per-metric instruments append labels via Name (e.g.
//     score_tuples_out_total{metric="node1.nvme0.capacity"}).
//   - Snapshot returns a coherent point-in-time copy; the text exposition in
//     http.go serializes a snapshot in the Prometheus text format.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. A nil Counter is a no-op.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. A nil Gauge is a no-op.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets are the default histogram bounds for latencies, in
// seconds: 1µs .. 10s in decades.
var DefLatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Histogram is a fixed-bucket histogram. Observations land in the first
// bucket whose upper bound is >= the value; values above every bound land in
// the implicit +Inf bucket. A nil Histogram is a no-op.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistogramSnapshot is a point-in-time copy of a histogram. Buckets are
// cumulative (Prometheus "le" semantics); the +Inf bucket equals Count.
type HistogramSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	UpperBound float64 // math.Inf(1) for the last bucket
	Count      uint64  // observations <= UpperBound
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]Bucket, len(h.bounds)+1)}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = Bucket{UpperBound: ub, Count: cum}
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// Registry holds named instruments. Instrument lookup/creation takes a lock;
// the returned handles are lock-free. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry, for components not wired to a
// service-owned one (e.g. standalone tools).
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on first
// use. A nil Registry returns nil (a no-op instrument).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds on first use (empty bounds mean
// DefLatencyBuckets). Later calls return the existing histogram regardless
// of bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a coherent point-in-time copy of every registered instrument,
// keyed by full instrument name (including labels).
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Counter returns the snapshotted value of the named counter (0 if absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the snapshotted value of the named gauge (0 if absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Snapshot copies every instrument's current value. A nil Registry returns
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Name builds a labelled instrument name: Name("x_total", "metric", "m") is
// `x_total{metric="m"}`. Label values are escaped per the Prometheus text
// format. kv must alternate key, value; a trailing odd key is ignored.
func Name(base string, kv ...string) string {
	if len(kv) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

// splitName separates a full instrument name into its base and label block
// (`x{a="b"}` -> `x`, `a="b"`). Labels are empty when the name is plain.
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}
