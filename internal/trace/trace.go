// Package trace implements capture and replay of metric traces — the
// methodology of §4.3.1: "we captured the HACC capacity workload and
// replayed it with an emulation, so that there would be minimal issues with
// time drift or interference between runs". A Trace is a uniformly-sampled
// series for one metric; the CSV format is one header line
// ("metric,<id>,tick,<duration>") followed by one sample per line.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/score"
	"repro/internal/telemetry"
)

// Trace is a uniformly-sampled capture of one metric.
type Trace struct {
	// Metric names the captured stream.
	Metric telemetry.MetricID
	// Tick is the sampling period.
	Tick time.Duration
	// Samples are the values, one per tick.
	Samples []float64
}

// ErrFormat reports a malformed trace file.
var ErrFormat = errors.New("trace: malformed trace file")

// Duration is the covered time span.
func (t *Trace) Duration() time.Duration { return time.Duration(len(t.Samples)) * t.Tick }

// Hook returns a score.ReplayHook that replays the trace through a Fact
// Vertex.
func (t *Trace) Hook() *score.ReplayHook {
	return &score.ReplayHook{ID: t.Metric, Trace: append([]float64(nil), t.Samples...)}
}

// Write encodes the trace as CSV.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "metric,%s,tick,%s\n", t.Metric, t.Tick); err != nil {
		return err
	}
	for _, v := range t.Samples {
		if _, err := fmt.Fprintf(bw, "%g\n", v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read decodes a CSV trace.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: empty file", ErrFormat)
	}
	parts := strings.Split(sc.Text(), ",")
	if len(parts) != 4 || parts[0] != "metric" || parts[2] != "tick" {
		return nil, fmt.Errorf("%w: bad header %q", ErrFormat, sc.Text())
	}
	tick, err := time.ParseDuration(parts[3])
	if err != nil || tick <= 0 {
		return nil, fmt.Errorf("%w: bad tick %q", ErrFormat, parts[3])
	}
	t := &Trace{Metric: telemetry.MetricID(parts[1]), Tick: tick}
	for line := 2; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %q", ErrFormat, line, text)
		}
		t.Samples = append(t.Samples, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(t.Samples) == 0 {
		return nil, fmt.Errorf("%w: no samples", ErrFormat)
	}
	return t, nil
}

// Load reads a trace file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Capture samples a monitor hook n times at the given tick of simulated
// cadence (the hook is polled back-to-back; tick only stamps the metadata,
// matching how the paper's emulation replays independent of wall time).
func Capture(hook score.Hook, n int, tick time.Duration) (*Trace, error) {
	if n <= 0 || tick <= 0 {
		return nil, errors.New("trace: need positive sample count and tick")
	}
	t := &Trace{Metric: hook.Metric(), Tick: tick, Samples: make([]float64, 0, n)}
	for i := 0; i < n; i++ {
		v, err := hook.Poll()
		if err != nil {
			return nil, fmt.Errorf("trace: capturing sample %d: %w", i, err)
		}
		t.Samples = append(t.Samples, v)
	}
	return t, nil
}

// FromSeries wraps a raw series as a Trace.
func FromSeries(metric telemetry.MetricID, tick time.Duration, samples []float64) *Trace {
	return &Trace{Metric: metric, Tick: tick, Samples: append([]float64(nil), samples...)}
}
