package trace

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/score"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

func sample() *Trace {
	return FromSeries("node1.nvme0.capacity", time.Second, []float64{100, 99.5, 99, 98})
}

func TestRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metric != tr.Metric || got.Tick != tr.Tick || len(got.Samples) != len(tr.Samples) {
		t.Fatalf("got=%+v", got)
	}
	for i := range tr.Samples {
		if got.Samples[i] != tr.Samples[i] {
			t.Fatalf("sample %d: %f != %f", i, got.Samples[i], tr.Samples[i])
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			// The CSV format is plain %g; weed out NaN/Inf which have no
			// round-trippable text form in this format.
			if v != v || v > 1e300 || v < -1e300 {
				vals[i] = 0
			}
		}
		tr := FromSeries("m", 5*time.Second, vals)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got.Samples) != len(vals) {
			return false
		}
		for i := range vals {
			if got.Samples[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hacc.trace")
	tr := FromSeries("cap", time.Second, workloads.HACCRegular(time.Minute, 1e9))
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration() != time.Minute {
		t.Fatalf("duration=%v", got.Duration())
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "ghost")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReadMalformed(t *testing.T) {
	cases := []string{
		"",
		"bogus header\n1\n",
		"metric,m,tick,xyz\n1\n",
		"metric,m,tick,-1s\n1\n",
		"metric,m,tick,1s\nnot-a-number\n",
		"metric,m,tick,1s\n", // no samples
	}
	for i, src := range cases {
		if _, err := Read(strings.NewReader(src)); !errors.Is(err, ErrFormat) {
			t.Errorf("case %d: err=%v", i, err)
		}
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	got, err := Read(strings.NewReader("metric,m,tick,1s\n1\n\n2\n"))
	if err != nil || len(got.Samples) != 2 {
		t.Fatalf("got=%+v err=%v", got, err)
	}
}

func TestHookReplay(t *testing.T) {
	tr := sample()
	h := tr.Hook()
	if h.Metric() != tr.Metric {
		t.Fatal("metric mismatch")
	}
	for i, want := range tr.Samples {
		v, err := h.Poll()
		if err != nil || v != want {
			t.Fatalf("poll %d: %f err=%v", i, v, err)
		}
	}
	// The hook owns a copy; mutating the trace must not affect it.
	tr.Samples[0] = -1
	h.Reset()
	if v, _ := h.Poll(); v != 100 {
		t.Fatalf("hook aliased samples: %f", v)
	}
}

func TestCapture(t *testing.T) {
	i := 0
	hook := score.HookFunc{ID: telemetry.MetricID("counter"), Fn: func() (float64, error) {
		i++
		return float64(i), nil
	}}
	tr, err := Capture(hook, 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 5 || tr.Samples[4] != 5 || tr.Metric != "counter" {
		t.Fatalf("tr=%+v", tr)
	}
	if _, err := Capture(hook, 0, time.Second); err == nil {
		t.Fatal("zero samples accepted")
	}
	failing := score.HookFunc{ID: "f", Fn: func() (float64, error) { return 0, errors.New("nope") }}
	if _, err := Capture(failing, 3, time.Second); err == nil {
		t.Fatal("failing hook accepted")
	}
}
