package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// TestHistoryConcurrentEvictionOrder is the regression test for the
// out-of-order eviction bug: Append used to invoke onEvict after releasing
// h.mu, so two appenders racing through the callback could deliver evicted
// tuples to the archiver out of timestamp order. Evictions must now be
// observed in non-decreasing timestamp order (run with -race).
func TestHistoryConcurrentEvictionOrder(t *testing.T) {
	const (
		workers = 4
		appends = 5000
	)
	var evMu sync.Mutex
	var evicted []int64
	h := NewHistory(1, func(i telemetry.Info) {
		// Simulate archiver latency: the pre-fix code ran this callback
		// outside the History lock, so a yield here let racing appenders
		// swap their evictions' arrival order.
		runtime.Gosched()
		evMu.Lock()
		evicted = append(evicted, i.Timestamp)
		evMu.Unlock()
	})
	r := obs.NewRegistry()
	h.Instrument(r.Counter("evictions_total"), r.Counter("drops_total"))

	var ts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < appends; i++ {
				h.Append(telemetry.NewFact("m", ts.Add(1), float64(i)))
			}
		}()
	}
	wg.Wait()

	evMu.Lock()
	defer evMu.Unlock()
	for i := 1; i < len(evicted); i++ {
		if evicted[i] < evicted[i-1] {
			t.Fatalf("eviction %d out of order: ts %d after %d", i, evicted[i], evicted[i-1])
		}
	}
	if len(evicted) == 0 {
		t.Fatal("expected evictions")
	}
	if got := r.Snapshot().Counter("evictions_total"); got != uint64(len(evicted)) {
		t.Fatalf("obs evictions = %d, callback saw %d", got, len(evicted))
	}
	// Every append either stored (evicting, once the 1-slot window is warm)
	// or was rejected as out of order; both tallies must add up.
	if got, want := r.Snapshot().Counter("drops_total"), h.Dropped(); got != want {
		t.Fatalf("obs drops = %d, Dropped() = %d", got, want)
	}
}

// TestHistoryEvictionCallbackSeesOrderedStream checks single-threaded
// eviction delivery is the displaced entry, oldest first.
func TestHistoryEvictionCallbackSeesOrderedStream(t *testing.T) {
	var evicted []int64
	h := NewHistory(2, func(i telemetry.Info) { evicted = append(evicted, i.Timestamp) })
	for ts := int64(1); ts <= 5; ts++ {
		if !h.Append(telemetry.NewFact("m", ts, 0)) {
			t.Fatalf("append %d rejected", ts)
		}
	}
	want := []int64{1, 2, 3}
	if len(evicted) != len(want) {
		t.Fatalf("evicted %v, want %v", evicted, want)
	}
	for i := range want {
		if evicted[i] != want[i] {
			t.Fatalf("evicted %v, want %v", evicted, want)
		}
	}
}

func TestMPMCInstrumentCountsFailures(t *testing.T) {
	r := obs.NewRegistry()
	q := NewMPMC(2)
	q.Instrument(r.Counter("push_full_total"), r.Counter("pop_empty_total"))
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop on empty should fail")
	}
	q.TryPush(telemetry.NewFact("m", 1, 0))
	q.TryPush(telemetry.NewFact("m", 2, 0))
	if q.TryPush(telemetry.NewFact("m", 3, 0)) {
		t.Fatal("push on full should fail")
	}
	s := r.Snapshot()
	if s.Counter("push_full_total") != 1 || s.Counter("pop_empty_total") != 1 {
		t.Fatalf("counters = %v", s.Counters)
	}
}
