package queue

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/telemetry"
)

// buildHistory fills a History of the given capacity with n entries whose
// timestamps start at base and advance by 0..2 each step (duplicates and
// gaps), wrapping the ring when n > capacity.
func buildHistory(capacity, n int, base int64, r *rand.Rand) *History {
	h := NewHistory(capacity, nil)
	ts := base
	for i := 0; i < n; i++ {
		h.Append(telemetry.NewFact("m", ts, float64(i)))
		ts += int64(r.Intn(3))
	}
	return h
}

// collectRangeFunc materializes a RangeFunc scan for comparison.
func collectRangeFunc(h *History, from, to int64) []telemetry.Info {
	var out []telemetry.Info
	h.RangeFunc(from, to, func(in telemetry.Info) bool {
		out = append(out, in)
		return true
	})
	return out
}

// Property: RangeFunc observes exactly the entries Range copies, for any
// fill level (wrapped and unwrapped rings) and any query window.
func TestRangeFuncMatchesRangeQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := 1 + r.Intn(64)
		n := r.Intn(3 * capacity) // under-full, exactly full, and wrapped
		h := buildHistory(capacity, n, int64(r.Intn(10)), r)
		oldest, newest, _ := h.Bounds()
		for trial := 0; trial < 8; trial++ {
			from := oldest - 2 + int64(r.Intn(int(newest-oldest+5)))
			to := from - 3 + int64(r.Intn(int(newest-oldest+8)))
			got := collectRangeFunc(h, from, to)
			want := h.Range(from, to)
			if len(got) != len(want) {
				t.Logf("seed=%d cap=%d n=%d [%d,%d]: RangeFunc %d entries, Range %d",
					seed, capacity, n, from, to, len(got), len(want))
				return false
			}
			if !reflect.DeepEqual(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Fold over the full window visits exactly the Snapshot entries in
// order (checked via an order-sensitive accumulator).
func TestFoldMatchesSnapshotQuick(t *testing.T) {
	type acc struct {
		n   int
		sum float64
		sig int64 // order-sensitive signature
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		capacity := 1 + r.Intn(48)
		n := r.Intn(3 * capacity)
		h := buildHistory(capacity, n, 0, r)
		got := Fold(h, -1<<62, 1<<62, acc{}, func(a acc, in telemetry.Info) acc {
			a.n++
			a.sum += in.Value
			a.sig = a.sig*31 + in.Timestamp
			return a
		})
		var want acc
		for _, in := range h.Snapshot() {
			want.n++
			want.sum += in.Value
			want.sig = want.sig*31 + in.Timestamp
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRangeFuncEarlyStop verifies a false return halts the scan.
func TestRangeFuncEarlyStop(t *testing.T) {
	h := NewHistory(16, nil)
	for i := 0; i < 10; i++ {
		h.Append(telemetry.NewFact("m", int64(i), float64(i)))
	}
	visited := 0
	h.RangeFunc(0, 1<<62, func(telemetry.Info) bool {
		visited++
		return visited < 3
	})
	if visited != 3 {
		t.Fatalf("visited=%d want 3", visited)
	}
}

// TestRangePooled verifies the pooled copy matches Range and that a released
// slice is reused without corrupting later scans.
func TestRangePooled(t *testing.T) {
	h := NewHistory(8, nil)
	for i := 0; i < 20; i++ { // wrap the ring
		h.Append(telemetry.NewFact("m", int64(i), float64(i)))
	}
	got, release := h.RangePooled(14, 18)
	want := h.Range(14, 18)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RangePooled=%v want %v", got, want)
	}
	cp := append([]telemetry.Info(nil), got...)
	release()
	again, release2 := h.RangePooled(14, 18)
	defer release2()
	if !reflect.DeepEqual(again, cp) {
		t.Fatalf("after release: %v want %v", again, cp)
	}
}

// TestScanDuringEvictionRace hammers RangeFunc/Fold readers against an
// appender that keeps the ring wrapping (evicting), so the race detector can
// see any unsynchronized access, and asserts every observed scan is
// internally timestamp-ordered.
func TestScanDuringEvictionRace(t *testing.T) {
	evicted := 0
	h := NewHistory(32, func(telemetry.Info) { evicted++ })
	done := make(chan struct{})
	var appender, readers sync.WaitGroup
	appender.Add(1)
	go func() {
		defer appender.Done()
		for ts := int64(0); ; ts++ {
			select {
			case <-done:
				return
			default:
			}
			h.Append(telemetry.NewFact("m", ts, float64(ts)))
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				last := int64(-1)
				ok := true
				h.RangeFunc(-1<<62, 1<<62, func(in telemetry.Info) bool {
					if in.Timestamp < last {
						ok = false
					}
					last = in.Timestamp
					return true
				})
				if !ok {
					t.Error("RangeFunc observed out-of-order timestamps")
					return
				}
				n := Fold(h, -1<<62, 1<<62, 0, func(acc int, _ telemetry.Info) int { return acc + 1 })
				if n > 32 {
					t.Errorf("Fold visited %d entries, capacity 32", n)
					return
				}
			}
		}()
	}
	// Let readers finish, then stop the appender.
	readers.Wait()
	close(done)
	appender.Wait()
}

// TestRangeFuncZeroAlloc pins the headline property: an aggregate scan via
// RangeFunc performs zero per-entry heap allocations.
func TestRangeFuncZeroAlloc(t *testing.T) {
	h := NewHistory(1024, nil)
	for i := 0; i < 2048; i++ {
		h.Append(telemetry.NewFact("m", int64(i), float64(i)))
	}
	var sum float64
	fn := func(in telemetry.Info) bool { sum += in.Value; return true }
	allocs := testing.AllocsPerRun(100, func() {
		sum = 0
		h.RangeFunc(-1<<62, 1<<62, fn)
	})
	if allocs != 0 {
		t.Fatalf("RangeFunc allocated %.1f objects per scan, want 0", allocs)
	}
}

// TestSnapshotWrapped covers the two-span copy across the ring seam.
func TestSnapshotWrapped(t *testing.T) {
	h := NewHistory(5, nil)
	for i := 0; i < 13; i++ {
		h.Append(telemetry.NewFact("m", int64(i), float64(i)))
	}
	snap := h.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("len=%d", len(snap))
	}
	for i, in := range snap {
		if in.Timestamp != int64(8+i) {
			t.Fatalf("snap[%d].ts=%d want %d", i, in.Timestamp, 8+i)
		}
	}
}

func benchHistory(n int) *History {
	h := NewHistory(n, nil)
	for i := 0; i < n; i++ {
		h.Append(telemetry.NewFact("bench.metric", int64(i), float64(i)))
	}
	return h
}

// BenchmarkHistoryRangeCopy is the baseline: materialize the window.
func BenchmarkHistoryRangeCopy(b *testing.B) {
	h := benchHistory(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		for _, in := range h.Range(-1<<62, 1<<62) {
			sum += in.Value
		}
	}
	_ = sum
}

// BenchmarkHistoryRangeFunc is the zero-copy aggregate scan.
func BenchmarkHistoryRangeFunc(b *testing.B) {
	h := benchHistory(4096)
	var sum float64
	fn := func(in telemetry.Info) bool { sum += in.Value; return true }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum = 0
		h.RangeFunc(-1<<62, 1<<62, fn)
	}
	_ = sum
}

// BenchmarkHistoryRangePooled measures the pooled ownership variant.
func BenchmarkHistoryRangePooled(b *testing.B) {
	h := benchHistory(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		entries, release := h.RangePooled(-1<<62, 1<<62)
		for _, in := range entries {
			sum += in.Value
		}
		release()
	}
	_ = sum
}
