package queue

import (
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// History is a bounded, timestamp-ordered window of the most recent
// Information tuples of one metric. The SCoRe Query Executor parses it with
// timestamp-based indexing (binary search); entries evicted from the window
// are handed to an eviction callback so the Archiver can persist them.
//
// Writers must append tuples in non-decreasing timestamp order (Facts are
// ordered by timestamp, making them linearizable — §3.1 of the paper).
type History struct {
	mu      sync.RWMutex
	buf     []telemetry.Info
	head    int // index of oldest entry
	count   int
	onEvict func(telemetry.Info)
	dropped uint64 // out-of-order appends rejected

	// Optional obs instruments (nil-safe no-ops when not instrumented).
	obsEvicted *obs.Counter
	obsDropped *obs.Counter
}

// NewHistory returns a history window holding up to capacity entries.
//
// Callback contract: onEvict, if non-nil, is called synchronously with each
// entry displaced by Append, while the History lock is held. Evictions are
// therefore delivered in timestamp order even under concurrent appenders —
// the Archiver depends on this, since its log rejects nothing and replays in
// append order. The callback must be fast and must not call back into the
// History (that would self-deadlock); hand heavy work to another goroutine.
func NewHistory(capacity int, onEvict func(telemetry.Info)) *History {
	if capacity < 1 {
		capacity = 1
	}
	return &History{buf: make([]telemetry.Info, capacity), onEvict: onEvict}
}

// Instrument attaches obs counters for evictions and rejected (out-of-order)
// appends. Pass nil for either to skip it.
func (h *History) Instrument(evicted, dropped *obs.Counter) {
	h.mu.Lock()
	h.obsEvicted, h.obsDropped = evicted, dropped
	h.mu.Unlock()
}

// Append adds info to the window. Appends whose timestamp precedes the
// newest stored entry are rejected (the queue is timestamp-linearized) and
// counted; Append reports whether the entry was stored.
//
// The eviction callback runs under the History lock (see NewHistory): it was
// previously invoked after unlock, which let two concurrent appenders hand
// evicted tuples to the archiver out of timestamp order.
func (h *History) Append(info telemetry.Info) bool {
	h.mu.Lock()
	if h.count > 0 {
		newest := h.buf[(h.head+h.count-1)%len(h.buf)]
		if info.Timestamp < newest.Timestamp {
			h.dropped++
			h.obsDropped.Inc()
			h.mu.Unlock()
			return false
		}
	}
	if h.count == len(h.buf) {
		evicted := h.buf[h.head]
		h.head = (h.head + 1) % len(h.buf)
		h.count--
		h.obsEvicted.Inc()
		if h.onEvict != nil {
			// Deliver under the lock so evictions stay timestamp-ordered.
			h.onEvict(evicted)
		}
	}
	h.buf[(h.head+h.count)%len(h.buf)] = info
	h.count++
	h.mu.Unlock()
	return true
}

// Len returns the number of stored entries.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.count
}

// Dropped returns how many out-of-order appends have been rejected.
func (h *History) Dropped() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.dropped
}

// Latest returns the newest entry, reporting false when empty. This is the
// hot path for middleware queries (SELECT MAX(Timestamp), metric FROM t).
func (h *History) Latest() (telemetry.Info, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.count == 0 {
		return telemetry.Info{}, false
	}
	return h.buf[(h.head+h.count-1)%len(h.buf)], true
}

// at returns the i-th oldest entry. Caller holds h.mu.
func (h *History) at(i int) telemetry.Info {
	return h.buf[(h.head+i)%len(h.buf)]
}

// Range returns a copy of all entries with Timestamp in [from, to],
// inclusive, in timestamp order. Binary search locates the window bounds.
func (h *History) Range(from, to int64) []telemetry.Info {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.count == 0 || from > to {
		return nil
	}
	lo := sort.Search(h.count, func(i int) bool { return h.at(i).Timestamp >= from })
	hi := sort.Search(h.count, func(i int) bool { return h.at(i).Timestamp > to })
	if lo >= hi {
		return nil
	}
	out := make([]telemetry.Info, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, h.at(i))
	}
	return out
}

// Before returns the newest entry with Timestamp <= ts, reporting false when
// no such entry is retained.
func (h *History) Before(ts int64) (telemetry.Info, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	idx := sort.Search(h.count, func(i int) bool { return h.at(i).Timestamp > ts })
	if idx == 0 {
		return telemetry.Info{}, false
	}
	return h.at(idx - 1), true
}

// Snapshot returns a copy of the full window in timestamp order.
func (h *History) Snapshot() []telemetry.Info {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]telemetry.Info, h.count)
	for i := 0; i < h.count; i++ {
		out[i] = h.at(i)
	}
	return out
}
