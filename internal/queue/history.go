package queue

import (
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// History is a bounded, timestamp-ordered window of the most recent
// Information tuples of one metric. The SCoRe Query Executor parses it with
// timestamp-based indexing (binary search); entries evicted from the window
// are handed to an eviction callback so the Archiver can persist them.
//
// Writers must append tuples in non-decreasing timestamp order (Facts are
// ordered by timestamp, making them linearizable — §3.1 of the paper).
type History struct {
	mu      sync.RWMutex
	buf     []telemetry.Info
	head    int // index of oldest entry
	count   int
	onEvict func(telemetry.Info)
	dropped uint64 // out-of-order appends rejected

	// Optional obs instruments (nil-safe no-ops when not instrumented).
	obsEvicted *obs.Counter
	obsDropped *obs.Counter
}

// NewHistory returns a history window holding up to capacity entries.
//
// Callback contract: onEvict, if non-nil, is called synchronously with each
// entry displaced by Append, while the History lock is held. Evictions are
// therefore delivered in timestamp order even under concurrent appenders —
// the Archiver depends on this, since its log rejects nothing and replays in
// append order. The callback must be fast and must not call back into the
// History (that would self-deadlock); hand heavy work to another goroutine.
func NewHistory(capacity int, onEvict func(telemetry.Info)) *History {
	if capacity < 1 {
		capacity = 1
	}
	return &History{buf: make([]telemetry.Info, capacity), onEvict: onEvict}
}

// Instrument attaches obs counters for evictions and rejected (out-of-order)
// appends. Pass nil for either to skip it.
func (h *History) Instrument(evicted, dropped *obs.Counter) {
	h.mu.Lock()
	h.obsEvicted, h.obsDropped = evicted, dropped
	h.mu.Unlock()
}

// Append adds info to the window. Appends whose timestamp precedes the
// newest stored entry are rejected (the queue is timestamp-linearized) and
// counted; Append reports whether the entry was stored.
//
// The eviction callback runs under the History lock (see NewHistory): it was
// previously invoked after unlock, which let two concurrent appenders hand
// evicted tuples to the archiver out of timestamp order.
func (h *History) Append(info telemetry.Info) bool {
	h.mu.Lock()
	if h.count > 0 {
		newest := h.buf[(h.head+h.count-1)%len(h.buf)]
		if info.Timestamp < newest.Timestamp {
			h.dropped++
			h.obsDropped.Inc()
			h.mu.Unlock()
			return false
		}
	}
	if h.count == len(h.buf) {
		evicted := h.buf[h.head]
		h.head = (h.head + 1) % len(h.buf)
		h.count--
		h.obsEvicted.Inc()
		if h.onEvict != nil {
			// Deliver under the lock so evictions stay timestamp-ordered.
			h.onEvict(evicted)
		}
	}
	h.buf[(h.head+h.count)%len(h.buf)] = info
	h.count++
	h.mu.Unlock()
	return true
}

// Len returns the number of stored entries.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.count
}

// Dropped returns how many out-of-order appends have been rejected.
func (h *History) Dropped() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.dropped
}

// Latest returns the newest entry, reporting false when empty. This is the
// hot path for middleware queries (SELECT MAX(Timestamp), metric FROM t).
func (h *History) Latest() (telemetry.Info, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.count == 0 {
		return telemetry.Info{}, false
	}
	return h.buf[(h.head+h.count-1)%len(h.buf)], true
}

// Bounds returns the oldest and newest retained timestamps, reporting false
// when the window is empty. Callers that only need the retention horizon
// (e.g. to decide whether a range query must spill to the archive) use this
// instead of copying the whole window out.
func (h *History) Bounds() (oldest, newest int64, ok bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.count == 0 {
		return 0, 0, false
	}
	oldest = h.buf[h.head].Timestamp
	newest = h.buf[(h.head+h.count-1)%len(h.buf)].Timestamp
	return oldest, newest, true
}

// at returns the i-th oldest entry. Caller holds h.mu.
func (h *History) at(i int) telemetry.Info {
	return h.buf[(h.head+i)%len(h.buf)]
}

// boundsLocked returns the logical index window [lo, hi) of entries with
// Timestamp in [from, to]. Caller holds h.mu.
func (h *History) boundsLocked(from, to int64) (lo, hi int) {
	if h.count == 0 || from > to {
		return 0, 0
	}
	lo = sort.Search(h.count, func(i int) bool { return h.at(i).Timestamp >= from })
	hi = sort.Search(h.count, func(i int) bool { return h.at(i).Timestamp > to })
	if lo > hi {
		return 0, 0
	}
	return lo, hi
}

// spansLocked maps the logical window [lo, hi) onto the at most two
// contiguous slices of the ring buffer that back it, oldest span first.
// Caller holds h.mu.
func (h *History) spansLocked(lo, hi int) (a, b []telemetry.Info) {
	n := hi - lo
	if n <= 0 {
		return nil, nil
	}
	start := h.head + lo
	if start >= len(h.buf) {
		start -= len(h.buf)
	}
	first := len(h.buf) - start
	if first >= n {
		return h.buf[start : start+n], nil
	}
	return h.buf[start:], h.buf[:n-first]
}

// Range returns a copy of all entries with Timestamp in [from, to],
// inclusive, in timestamp order. Binary search locates the window bounds and
// the ring's two unwrapped halves are block-copied (no per-element modulo).
func (h *History) Range(from, to int64) []telemetry.Info {
	h.mu.RLock()
	defer h.mu.RUnlock()
	lo, hi := h.boundsLocked(from, to)
	if lo >= hi {
		return nil
	}
	out := make([]telemetry.Info, hi-lo)
	a, b := h.spansLocked(lo, hi)
	n := copy(out, a)
	copy(out[n:], b)
	return out
}

// RangeFunc visits every entry with Timestamp in [from, to], oldest first,
// under the read lock and without copying. fn returns false to stop the scan
// early. fn must be fast and must not call back into the History (readers
// block writers for the duration of the scan); callers that need ownership
// of the entries use Range or RangePooled instead.
func (h *History) RangeFunc(from, to int64, fn func(telemetry.Info) bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	lo, hi := h.boundsLocked(from, to)
	a, b := h.spansLocked(lo, hi)
	for i := range a {
		if !fn(a[i]) {
			return
		}
	}
	for i := range b {
		if !fn(b[i]) {
			return
		}
	}
}

// Fold accumulates over every entry with Timestamp in [from, to], oldest
// first, under the read lock and without copying: acc = fn(acc, entry). It
// exists so aggregate scans (AQE AVG/SUM/COUNT, Delphi feature extraction)
// can run allocation-free over the window.
func Fold[T any](h *History, from, to int64, acc T, fn func(T, telemetry.Info) T) T {
	h.RangeFunc(from, to, func(in telemetry.Info) bool {
		acc = fn(acc, in)
		return true
	})
	return acc
}

// rangePool recycles the backing arrays handed out by RangePooled.
var rangePool = sync.Pool{
	New: func() any {
		s := make([]telemetry.Info, 0, 512)
		return &s
	},
}

// RangePooled is the pooled-slice variant of Range for callers that need
// ownership of a copy but release it promptly (e.g. a query branch that
// renders rows and returns): the returned slice comes from a shared pool and
// MUST NOT be used after release is called. release is never nil.
func (h *History) RangePooled(from, to int64) (entries []telemetry.Info, release func()) {
	p := rangePool.Get().(*[]telemetry.Info)
	h.mu.RLock()
	lo, hi := h.boundsLocked(from, to)
	need := hi - lo
	if cap(*p) < need {
		*p = make([]telemetry.Info, need)
	}
	*p = (*p)[:need]
	a, b := h.spansLocked(lo, hi)
	n := copy(*p, a)
	copy((*p)[n:], b)
	h.mu.RUnlock()
	return *p, func() {
		*p = (*p)[:0]
		rangePool.Put(p)
	}
}

// Before returns the newest entry with Timestamp <= ts, reporting false when
// no such entry is retained.
func (h *History) Before(ts int64) (telemetry.Info, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	idx := sort.Search(h.count, func(i int) bool { return h.at(i).Timestamp > ts })
	if idx == 0 {
		return telemetry.Info{}, false
	}
	return h.at(idx - 1), true
}

// Snapshot returns a copy of the full window in timestamp order, block-
// copying the ring's two unwrapped halves.
func (h *History) Snapshot() []telemetry.Info {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]telemetry.Info, h.count)
	a, b := h.spansLocked(0, h.count)
	n := copy(out, a)
	copy(out[n:], b)
	return out
}
