package queue

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/telemetry"
)

func testFIFO(t *testing.T, q Queue) {
	t.Helper()
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
	for i := 0; i < q.Cap(); i++ {
		if !q.TryPush(telemetry.NewFact("m", int64(i), float64(i))) {
			t.Fatalf("push %d failed before capacity", i)
		}
	}
	if q.TryPush(telemetry.NewFact("m", 99, 99)) {
		t.Fatal("push into full queue succeeded")
	}
	if q.Len() != q.Cap() {
		t.Fatalf("Len=%d want %d", q.Len(), q.Cap())
	}
	for i := 0; i < q.Cap(); i++ {
		info, ok := q.TryPop()
		if !ok || info.Timestamp != int64(i) {
			t.Fatalf("pop %d: ok=%v info=%v", i, ok, info)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len=%d after drain", q.Len())
	}
}

func TestMPMCFIFO(t *testing.T)  { testFIFO(t, NewMPMC(8)) }
func TestMutexFIFO(t *testing.T) { testFIFO(t, NewMutex(8)) }

func TestMPMCCapacityRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 2}, {1, 2}, {2, 2}, {3, 4}, {8, 8}, {9, 16}} {
		if got := NewMPMC(c.in).Cap(); got != c.want {
			t.Errorf("NewMPMC(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMutexMinCapacity(t *testing.T) {
	if got := NewMutex(0).Cap(); got != 1 {
		t.Fatalf("Cap=%d want 1", got)
	}
}

func testConcurrent(t *testing.T, q Queue, producers, consumers, perProducer int) {
	t.Helper()
	var sum, count atomic.Int64
	var wg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if info, ok := q.TryPop(); ok {
					sum.Add(info.Timestamp)
					count.Add(1)
					continue
				}
				select {
				case <-done:
					// Drain whatever is left after producers stop.
					for {
						info, ok := q.TryPop()
						if !ok {
							return
						}
						sum.Add(info.Timestamp)
						count.Add(1)
					}
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perProducer; i++ {
				v := int64(p*perProducer + i)
				for !q.TryPush(telemetry.NewFact("m", v, 0)) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	pwg.Wait()
	close(done)
	wg.Wait()

	total := int64(producers * perProducer)
	if count.Load() != total {
		t.Fatalf("consumed %d, want %d", count.Load(), total)
	}
	want := total * (total - 1) / 2
	if sum.Load() != want {
		t.Fatalf("sum=%d want %d (lost or duplicated items)", sum.Load(), want)
	}
}

func TestMPMCConcurrent(t *testing.T)  { testConcurrent(t, NewMPMC(64), 4, 4, 5000) }
func TestMutexConcurrent(t *testing.T) { testConcurrent(t, NewMutex(64), 4, 4, 5000) }

func TestHistoryAppendAndLatest(t *testing.T) {
	h := NewHistory(4, nil)
	if _, ok := h.Latest(); ok {
		t.Fatal("Latest on empty history")
	}
	for i := 0; i < 10; i++ {
		if !h.Append(telemetry.NewFact("m", int64(i), float64(i))) {
			t.Fatalf("append %d rejected", i)
		}
	}
	if h.Len() != 4 {
		t.Fatalf("Len=%d want 4", h.Len())
	}
	latest, ok := h.Latest()
	if !ok || latest.Timestamp != 9 {
		t.Fatalf("Latest=%v ok=%v", latest, ok)
	}
}

func TestHistoryEviction(t *testing.T) {
	var evicted []int64
	h := NewHistory(3, func(i telemetry.Info) { evicted = append(evicted, i.Timestamp) })
	for i := 0; i < 5; i++ {
		h.Append(telemetry.NewFact("m", int64(i), 0))
	}
	if len(evicted) != 2 || evicted[0] != 0 || evicted[1] != 1 {
		t.Fatalf("evicted=%v", evicted)
	}
}

func TestHistoryRejectsOutOfOrder(t *testing.T) {
	h := NewHistory(4, nil)
	h.Append(telemetry.NewFact("m", 10, 0))
	if h.Append(telemetry.NewFact("m", 5, 0)) {
		t.Fatal("out-of-order append accepted")
	}
	if h.Dropped() != 1 {
		t.Fatalf("Dropped=%d", h.Dropped())
	}
	// Equal timestamps are allowed (multiple events in one poll tick).
	if !h.Append(telemetry.NewFact("m", 10, 1)) {
		t.Fatal("equal-timestamp append rejected")
	}
}

func TestHistoryRange(t *testing.T) {
	h := NewHistory(8, nil)
	for i := 0; i < 8; i++ {
		h.Append(telemetry.NewFact("m", int64(i*10), float64(i)))
	}
	got := h.Range(15, 45)
	if len(got) != 3 || got[0].Timestamp != 20 || got[2].Timestamp != 40 {
		t.Fatalf("Range(15,45)=%v", got)
	}
	if got := h.Range(100, 200); got != nil {
		t.Fatalf("out-of-window range = %v", got)
	}
	if got := h.Range(45, 15); got != nil {
		t.Fatalf("inverted range = %v", got)
	}
	all := h.Range(0, 70)
	if len(all) != 8 {
		t.Fatalf("full range len=%d", len(all))
	}
}

func TestHistoryRangeWrapped(t *testing.T) {
	// Force the ring to wrap, then binary-search across the wrap point.
	h := NewHistory(4, nil)
	for i := 0; i < 10; i++ {
		h.Append(telemetry.NewFact("m", int64(i), float64(i)))
	}
	got := h.Range(6, 8)
	if len(got) != 3 || got[0].Timestamp != 6 || got[2].Timestamp != 8 {
		t.Fatalf("wrapped Range = %v", got)
	}
}

func TestHistoryBefore(t *testing.T) {
	h := NewHistory(8, nil)
	for _, ts := range []int64{10, 20, 30} {
		h.Append(telemetry.NewFact("m", ts, float64(ts)))
	}
	if _, ok := h.Before(5); ok {
		t.Fatal("Before(5) should fail")
	}
	if got, ok := h.Before(20); !ok || got.Timestamp != 20 {
		t.Fatalf("Before(20)=%v ok=%v", got, ok)
	}
	if got, ok := h.Before(25); !ok || got.Timestamp != 20 {
		t.Fatalf("Before(25)=%v ok=%v", got, ok)
	}
	if got, ok := h.Before(99); !ok || got.Timestamp != 30 {
		t.Fatalf("Before(99)=%v ok=%v", got, ok)
	}
}

func TestHistorySnapshot(t *testing.T) {
	h := NewHistory(3, nil)
	for i := 0; i < 5; i++ {
		h.Append(telemetry.NewFact("m", int64(i), 0))
	}
	s := h.Snapshot()
	if len(s) != 3 || s[0].Timestamp != 2 || s[2].Timestamp != 4 {
		t.Fatalf("Snapshot=%v", s)
	}
}

// Property: History.Range agrees with a naive linear filter for any sorted
// input and query bounds.
func TestHistoryRangeQuick(t *testing.T) {
	f := func(raw []int16, a, b int16) bool {
		h := NewHistory(32, nil)
		var kept []int64
		last := int64(-1 << 40)
		for _, r := range raw {
			ts := int64(r)
			if ts < last {
				continue // history rejects these; skip to keep model in sync
			}
			last = ts
			h.Append(telemetry.NewFact("m", ts, 0))
			kept = append(kept, ts)
		}
		if len(kept) > 32 {
			kept = kept[len(kept)-32:]
		}
		lo, hi := int64(a), int64(b)
		var want []int64
		for _, ts := range kept {
			if ts >= lo && ts <= hi {
				want = append(want, ts)
			}
		}
		got := h.Range(lo, hi)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Timestamp != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMPMCPushPop(b *testing.B) {
	q := NewMPMC(1024)
	info := telemetry.NewFact("m", 1, 2)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if q.TryPush(info) {
				q.TryPop()
			}
		}
	})
}

func BenchmarkMutexPushPop(b *testing.B) {
	q := NewMutex(1024)
	info := telemetry.NewFact("m", 1, 2)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if q.TryPush(info) {
				q.TryPop()
			}
		}
	})
}

func BenchmarkHistoryAppend(b *testing.B) {
	h := NewHistory(4096, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Append(telemetry.NewFact("m", int64(i), float64(i)))
	}
}

func BenchmarkHistoryLatest(b *testing.B) {
	h := NewHistory(4096, nil)
	for i := 0; i < 4096; i++ {
		h.Append(telemetry.NewFact("m", int64(i), float64(i)))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Latest()
	}
}
