// Package queue provides the in-memory queue structures backing each SCoRe
// vertex: a bounded lock-free MPMC ring (the hot publish path), a mutex-based
// ring used as an ablation baseline, and a timestamp-indexed history buffer
// serving the Query Executor's timestamp-based indexing.
package queue

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// Queue is the minimal contract shared by the lock-free and mutex rings, so
// SCoRe vertices (and the ablation benches) can swap implementations.
type Queue interface {
	// TryPush enqueues info, reporting false when the queue is full.
	TryPush(info telemetry.Info) bool
	// TryPop dequeues the oldest entry, reporting false when empty.
	TryPop() (telemetry.Info, bool)
	// Len returns the approximate number of queued entries.
	Len() int
	// Cap returns the fixed capacity.
	Cap() int
}

// cell is one slot of the Vyukov bounded MPMC queue. The sequence field
// encodes both the slot's turn and whether it holds data.
type cell struct {
	seq  atomic.Uint64
	info telemetry.Info
}

// MPMC is a bounded multi-producer multi-consumer lock-free queue based on
// Dmitry Vyukov's bounded MPMC algorithm. Capacity is rounded up to a power
// of two. The zero value is not usable; call NewMPMC.
type MPMC struct {
	mask    uint64
	cells   []cell
	_pad0   [64]byte // keep enqueue/dequeue cursors on separate cache lines
	enqueue atomic.Uint64
	_pad1   [64]byte
	dequeue atomic.Uint64
	_pad2   [64]byte

	// Optional obs instruments; nil-safe no-ops, set before concurrent use.
	obsPushFull *obs.Counter
	obsPopEmpty *obs.Counter
}

// Instrument attaches obs counters for failed pushes (queue full) and failed
// pops (queue empty). Call before the queue is shared between goroutines.
func (q *MPMC) Instrument(pushFull, popEmpty *obs.Counter) {
	q.obsPushFull, q.obsPopEmpty = pushFull, popEmpty
}

// NewMPMC returns a lock-free queue with capacity rounded up to the next
// power of two (minimum 2).
func NewMPMC(capacity int) *MPMC {
	n := 2
	for n < capacity {
		n <<= 1
	}
	q := &MPMC{mask: uint64(n - 1), cells: make([]cell, n)}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q
}

// TryPush implements Queue.
func (q *MPMC) TryPush(info telemetry.Info) bool {
	pos := q.enqueue.Load()
	for {
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if q.enqueue.CompareAndSwap(pos, pos+1) {
				c.info = info
				c.seq.Store(pos + 1)
				return true
			}
			pos = q.enqueue.Load()
		case diff < 0:
			q.obsPushFull.Inc()
			return false // full
		default:
			pos = q.enqueue.Load()
		}
	}
}

// TryPop implements Queue.
func (q *MPMC) TryPop() (telemetry.Info, bool) {
	pos := q.dequeue.Load()
	for {
		c := &q.cells[pos&q.mask]
		seq := c.seq.Load()
		switch diff := int64(seq) - int64(pos+1); {
		case diff == 0:
			if q.dequeue.CompareAndSwap(pos, pos+1) {
				info := c.info
				c.seq.Store(pos + q.mask + 1)
				return info, true
			}
			pos = q.dequeue.Load()
		case diff < 0:
			q.obsPopEmpty.Inc()
			return telemetry.Info{}, false // empty
		default:
			pos = q.dequeue.Load()
		}
	}
}

// Len implements Queue. The result is approximate under concurrency.
func (q *MPMC) Len() int {
	n := int64(q.enqueue.Load()) - int64(q.dequeue.Load())
	if n < 0 {
		n = 0
	}
	if n > int64(len(q.cells)) {
		n = int64(len(q.cells))
	}
	return int(n)
}

// Cap implements Queue.
func (q *MPMC) Cap() int { return len(q.cells) }

// Mutex is a bounded FIFO protected by a sync.Mutex. It exists as the
// ablation baseline for the lock-free ring (DESIGN.md §4).
type Mutex struct {
	mu    sync.Mutex
	buf   []telemetry.Info
	head  int
	count int
}

// NewMutex returns a mutex-guarded ring with the exact given capacity
// (minimum 1).
func NewMutex(capacity int) *Mutex {
	if capacity < 1 {
		capacity = 1
	}
	return &Mutex{buf: make([]telemetry.Info, capacity)}
}

// TryPush implements Queue.
func (q *Mutex) TryPush(info telemetry.Info) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.count)%len(q.buf)] = info
	q.count++
	return true
}

// TryPop implements Queue.
func (q *Mutex) TryPop() (telemetry.Info, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.count == 0 {
		return telemetry.Info{}, false
	}
	info := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	return info, true
}

// Len implements Queue.
func (q *Mutex) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}

// Cap implements Queue.
func (q *Mutex) Cap() int { return len(q.buf) }

var (
	_ Queue = (*MPMC)(nil)
	_ Queue = (*Mutex)(nil)
)
