package hooks

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
)

func ares(t *testing.T) *cluster.Cluster {
	t.Helper()
	return cluster.BuildAres(time.Unix(1000, 0), 1, 1)
}

func poll(t *testing.T, h interface {
	Poll() (float64, error)
}) float64 {
	t.Helper()
	v, err := h.Poll()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDeviceHooks(t *testing.T) {
	c := ares(t)
	d := c.Node("comp00").Device("nvme0")
	d.Write(0, cluster.GB)
	c.Step(time.Second)

	if got := poll(t, DeviceRemaining(d)); got != float64(249*cluster.GB) {
		t.Fatalf("remaining=%f", got)
	}
	if got := poll(t, DeviceUsed(d)); got != float64(cluster.GB) {
		t.Fatalf("used=%f", got)
	}
	if got := poll(t, DeviceBandwidth(d)); got != float64(cluster.GB) {
		t.Fatalf("bw=%f", got)
	}
	iff := poll(t, DeviceInterference(d))
	if iff <= 0 || iff > 1 {
		t.Fatalf("interference=%f", iff)
	}
	if got := poll(t, DeviceHealth(d)); got != 1 {
		t.Fatalf("health=%f", got)
	}
	if got := poll(t, DeviceLoad(d)); got <= 0 {
		t.Fatalf("load=%f", got)
	}
	if got := poll(t, DeviceMSCA(d)); got != 0 { // no outstanding reqs
		t.Fatalf("msca=%f", got)
	}
	// Metric IDs are namespaced by device.
	if id := string(DeviceRemaining(d).Metric()); !strings.HasPrefix(id, "comp00.nvme0.") {
		t.Fatalf("id=%s", id)
	}
}

func TestNodeHooks(t *testing.T) {
	c := ares(t)
	n := c.Node("comp00")
	n.SetCPULoad(0.5)
	n.SetMemUsed(2 * cluster.GB)

	if got := poll(t, NodeCPU(n)); got != 0.5 {
		t.Fatalf("cpu=%f", got)
	}
	if got := poll(t, NodeMemUsed(n)); got != float64(2*cluster.GB) {
		t.Fatalf("mem=%f", got)
	}
	if got := poll(t, NodePower(n)); got != 90+85 {
		t.Fatalf("power=%f", got)
	}
	if got := poll(t, NodeEnergyPerTransfer(n)); got <= 0 {
		t.Fatalf("ept=%f", got)
	}
	if got := poll(t, NodeOnline(n)); got != 1 {
		t.Fatalf("online=%f", got)
	}
	n.SetOnline(false)
	if got := poll(t, NodeOnline(n)); got != 0 {
		t.Fatalf("offline=%f", got)
	}
}

func TestPingHook(t *testing.T) {
	c := ares(t)
	h := Ping(c, "comp00", "stor00")
	v := poll(t, h)
	if v <= 0 || v > 0.01 {
		t.Fatalf("ping=%f s", v)
	}
	if string(h.Metric()) != "net.comp00-stor00.ping" {
		t.Fatalf("id=%s", h.Metric())
	}
}

func TestTierRemainingHook(t *testing.T) {
	c := ares(t)
	h := TierRemaining(c, cluster.TierNVMe)
	if got := poll(t, h); got != float64(250*cluster.GB) {
		t.Fatalf("tier remaining=%f", got)
	}
}

func TestWithCost(t *testing.T) {
	c := ares(t)
	base := DeviceRemaining(c.Node("comp00").Device("nvme0"))
	costly := WithCost(base, 2*time.Millisecond)
	t0 := time.Now()
	v := poll(t, costly)
	if elapsed := time.Since(t0); elapsed < 2*time.Millisecond {
		t.Fatalf("cost not applied: %v", elapsed)
	}
	if v != float64(250*cluster.GB) {
		t.Fatalf("value=%f", v)
	}
	if costly.Metric() != base.Metric() {
		t.Fatal("metric id changed by wrapper")
	}
}

func TestCounting(t *testing.T) {
	c := ares(t)
	h, count := Counting(DeviceRemaining(c.Node("comp00").Device("nvme0")))
	if count() != 0 {
		t.Fatal("fresh counter nonzero")
	}
	poll(t, h)
	poll(t, h)
	if count() != 2 {
		t.Fatalf("count=%d", count())
	}
}
