// Package hooks provides the monitor hooks that connect SCoRe Fact Vertices
// to resources: device capacity/bandwidth/health, node CPU/memory/power,
// and network ping against the simulated cluster, plus a cost-modeling
// wrapper that reproduces the dominant hook cost of the paper's operation
// anatomy (Fig. 4: 97.5% of Fact Vertex time is the monitor hook).
package hooks

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/insights"
	"repro/internal/score"
	"repro/internal/telemetry"
)

// DeviceRemaining polls a device's free capacity in bytes.
func DeviceRemaining(d *cluster.Device) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(d.ID() + ".capacity"),
		Fn: func() (float64, error) { return float64(d.Remaining()), nil },
	}
}

// DeviceUsed polls a device's used bytes.
func DeviceUsed(d *cluster.Device) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(d.ID() + ".used"),
		Fn: func() (float64, error) { return float64(d.Used()), nil },
	}
}

// DeviceBandwidth polls the observed bandwidth (bytes/s) of the last window.
func DeviceBandwidth(d *cluster.Device) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(d.ID() + ".bw"),
		Fn: func() (float64, error) { return d.Snapshot().RealBW, nil },
	}
}

// DeviceInterference polls the Interference Factor (Table 1 row 2).
func DeviceInterference(d *cluster.Device) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(d.ID() + ".interference"),
		Fn: func() (float64, error) { return insights.InterferenceFactor(d.Snapshot()), nil },
	}
}

// DeviceMSCA polls the Medium Sensitivity to Concurrent Access (row 1).
func DeviceMSCA(d *cluster.Device) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(d.ID() + ".msca"),
		Fn: func() (float64, error) { return insights.MSCA(d.Snapshot()), nil },
	}
}

// DeviceHealth polls device health (row 5).
func DeviceHealth(d *cluster.Device) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(d.ID() + ".health"),
		Fn: func() (float64, error) { return insights.DeviceHealth(d.Snapshot()), nil },
	}
}

// DeviceLoad polls device load (row 13).
func DeviceLoad(d *cluster.Device) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(d.ID() + ".load"),
		Fn: func() (float64, error) { return insights.DeviceLoad(d.Snapshot()), nil },
	}
}

// NodeCPU polls a node's CPU utilization in [0,1].
func NodeCPU(n *cluster.Node) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(n.ID + ".cpu"),
		Fn: func() (float64, error) { return n.CPULoad(), nil },
	}
}

// NodeMemUsed polls a node's used memory bytes.
func NodeMemUsed(n *cluster.Node) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(n.ID + ".mem"),
		Fn: func() (float64, error) {
			used, _ := n.Mem()
			return float64(used), nil
		},
	}
}

// NodePower polls a node's power draw in watts.
func NodePower(n *cluster.Node) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(n.ID + ".power"),
		Fn: func() (float64, error) { return n.PowerWatts(), nil },
	}
}

// NodeEnergyPerTransfer polls rows 11/14 for a node.
func NodeEnergyPerTransfer(n *cluster.Node) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(n.ID + ".energy_per_transfer"),
		Fn: func() (float64, error) { return insights.EnergyPerTransfer(n), nil },
	}
}

// NodeOnline polls liveness as 0/1 (feeds the Node Availability insight).
func NodeOnline(n *cluster.Node) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(n.ID + ".online"),
		Fn: func() (float64, error) {
			if n.Online() {
				return 1, nil
			}
			return 0, nil
		},
	}
}

// Ping polls network round-trip time between two nodes in seconds.
func Ping(c *cluster.Cluster, a, b string) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID(fmt.Sprintf("net.%s-%s.ping", a, b)),
		Fn: func() (float64, error) { return c.Network().Ping(a, b).Seconds(), nil },
	}
}

// TierRemaining polls the total remaining capacity of a tier (row 10); the
// single-hook form used when the insight is not assembled from per-device
// fact vertices.
func TierRemaining(c *cluster.Cluster, tier cluster.Tier) score.Hook {
	return score.HookFunc{
		ID: telemetry.MetricID("tier." + tier.String() + ".remaining"),
		Fn: func() (float64, error) { return float64(insights.TierRemainingCapacity(c, tier)), nil },
	}
}

// WithCost wraps a hook with a simulated polling cost: reading low-level
// hardware counters is far more expensive than queue operations (Fig. 4),
// and the adaptive-interval evaluation counts hook calls precisely because
// each call has a roughly constant cost (§4.3.2). The cost is busy-waited so
// it shows up in the vertex's hook-time accounting.
func WithCost(h score.Hook, cost time.Duration) score.Hook {
	return score.HookFunc{
		ID: h.Metric(),
		Fn: func() (float64, error) {
			deadline := time.Now().Add(cost)
			for time.Now().Before(deadline) {
			}
			return h.Poll()
		},
	}
}

// Counting wraps a hook and counts polls via the returned counter func. The
// counter may be read from any goroutine.
func Counting(h score.Hook) (score.Hook, func() uint64) {
	var n atomic.Uint64
	counted := score.HookFunc{
		ID: h.Metric(),
		Fn: func() (float64, error) {
			n.Add(1)
			return h.Poll()
		},
	}
	return counted, n.Load
}
