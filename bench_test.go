// Package repro's root benchmarks regenerate every figure of the paper
// (via internal/figures) under `go test -bench`, plus the ablation benches
// DESIGN.md calls out and the headline sub-millisecond insight-access
// latency. Figures run their scaled-down "quick" parameters here so a full
// -bench=. pass stays in minutes; `cmd/apollo-bench -all` runs the full
// parameters.
package repro

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/delphi"
	"repro/internal/figures"
	"repro/internal/nn"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/score"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// benchFigure runs one figure generator once per bench iteration.
func benchFigure(b *testing.B, id string) {
	g, ok := figures.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	opts := figures.Options{Quick: true, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Fn(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Insights(b *testing.B)          { benchFigure(b, "t1") }
func BenchmarkFig3cDelphiVerification(b *testing.B) { benchFigure(b, "3c") }
func BenchmarkFig4OperationAnatomy(b *testing.B)    { benchFigure(b, "4") }
func BenchmarkFig5Overhead(b *testing.B)            { benchFigure(b, "5") }
func BenchmarkFig6aPublish(b *testing.B)            { benchFigure(b, "6a") }
func BenchmarkFig6bSubscribe(b *testing.B)          { benchFigure(b, "6b") }
func BenchmarkFig7aNodeDegree(b *testing.B)         { benchFigure(b, "7a") }
func BenchmarkFig7bHammingDistance(b *testing.B)    { benchFigure(b, "7b") }
func BenchmarkFig8AIMD(b *testing.B)                { benchFigure(b, "8") }
func BenchmarkFig9IrregularHACC(b *testing.B)       { benchFigure(b, "9") }
func BenchmarkFig10RegularHACC(b *testing.B)        { benchFigure(b, "10") }
func BenchmarkFig11DelphiVsLSTM(b *testing.B)       { benchFigure(b, "11") }
func BenchmarkFig12aLatencyScaling(b *testing.B)    { benchFigure(b, "12a") }
func BenchmarkFig12bQueryComplexity(b *testing.B)   { benchFigure(b, "12b") }
func BenchmarkFig12cCPUOverhead(b *testing.B)       { benchFigure(b, "12c") }
func BenchmarkFig13aPlacement(b *testing.B)         { benchFigure(b, "13a") }
func BenchmarkFig13bPrefetching(b *testing.B)       { benchFigure(b, "13b") }
func BenchmarkFig13cReplication(b *testing.B)       { benchFigure(b, "13c") }

// BenchmarkInsightAccessLatency measures the headline claim: acquiring a
// complex insight from Apollo takes well under a millisecond (§4.2.1 /
// abstract "sub-millisecond latency for acquiring complex insights").
func BenchmarkInsightAccessLatency(b *testing.B) {
	clock := sched.NewSimClock(time.Unix(0, 0))
	svc := core.New(core.Config{Clock: clock})
	var vertices []*score.FactVertex
	inputs := make([]telemetry.MetricID, 8)
	for i := range inputs {
		id := telemetry.MetricID(fmt.Sprintf("node%d.capacity", i))
		inputs[i] = id
		v, err := svc.RegisterMetric(score.HookFunc{ID: id, Fn: func() (float64, error) { return 100, nil }})
		if err != nil {
			b.Fatal(err)
		}
		vertices = append(vertices, v)
	}
	if _, err := svc.RegisterInsight("tier.capacity", inputs, score.Sum); err != nil {
		b.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		b.Fatal(err)
	}
	defer svc.Stop()
	for _, v := range vertices {
		v.PollOnce()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := svc.Latest("tier.capacity"); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	q := "SELECT MAX(Timestamp), metric FROM tier.capacity"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: AIMD rolling-average window size (DESIGN.md §4).
func BenchmarkAblationAIMDWindow(b *testing.B) {
	trace := workloads.HACCIrregular(10*time.Minute, 250e9, 42)
	for _, window := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("window%d", window), func(b *testing.B) {
			cfg := adaptive.DefaultConfig()
			cfg.Threshold = 0
			cfg.Window = window
			ctrl, err := adaptive.NewComplexAIMD(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var res adaptive.Result
			for i := 0; i < b.N; i++ {
				res = adaptive.Evaluate(trace, ctrl, time.Second, 0)
			}
			b.ReportMetric(res.Cost(), "cost")
			b.ReportMetric(res.Accuracy(), "accuracy")
		})
	}
}

// Ablation: the future-work permutation-entropy heuristic (§6) vs the
// shipped complex AIMD on the irregular HACC trace.
func BenchmarkAblationEntropyHeuristic(b *testing.B) {
	trace := workloads.HACCIrregular(10*time.Minute, 250e9, 42)
	cfg := adaptive.DefaultConfig()
	cfg.Threshold = 0
	complexC, err := adaptive.NewComplexAIMD(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ecfg := cfg
	ecfg.Threshold = 0.05 // entropy-delta units
	entropyC, err := adaptive.NewEntropyAIMD(ecfg, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range []struct {
		name string
		ctrl adaptive.Controller
	}{{"complex-aimd", complexC}, {"entropy", entropyC}} {
		b.Run(c.name, func(b *testing.B) {
			var res adaptive.Result
			for i := 0; i < b.N; i++ {
				res = adaptive.Evaluate(trace, c.ctrl, time.Second, 0)
			}
			b.ReportMetric(res.Cost(), "cost")
			b.ReportMetric(res.Accuracy(), "accuracy")
		})
	}
}

// Ablation: Delphi's frozen feature stack vs a plain trainable dense model
// of the same input shape.
func BenchmarkAblationDelphiStack(b *testing.B) {
	trace := workloads.SARSeries(workloads.MetricTPS, "nvme", 600, 3)
	train, test := trace[:300], trace[300:]

	b.Run("stacked", func(b *testing.B) {
		var r2 float64
		for i := 0; i < b.N; i++ {
			m, err := delphi.Train(delphi.TrainOptions{Seed: 1, Epochs: 15, SeriesPerFeature: 3, SeriesLen: 150})
			if err != nil {
				b.Fatal(err)
			}
			_, _, r2, err = m.Evaluate(test)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(r2, "r2")
	})
	b.Run("plain-dense", func(b *testing.B) {
		var r2 float64
		for i := 0; i < b.N; i++ {
			m := nn.NewSequential(nn.NewDense(delphi.WindowSize, 1, nn.Identity, 1))
			xs, ys := delphi.Windows(train, delphi.WindowSize)
			targets := make([][]float64, len(ys))
			for j, y := range ys {
				targets[j] = []float64{y}
			}
			if _, err := m.Fit(xs, targets, nn.FitOptions{Epochs: 15, BatchSize: 32, Optimizer: nn.NewAdam(0.01), Shuffle: true}); err != nil {
				b.Fatal(err)
			}
			// Score on the held-out tail in raw units.
			var preds, truth []float64
			for j := 0; j+delphi.WindowSize < len(test); j++ {
				w := test[j : j+delphi.WindowSize]
				norm, loc, scale := delphi.Normalize(w)
				preds = append(preds, m.Predict1(norm)*scale+loc)
				truth = append(truth, test[j+delphi.WindowSize])
			}
			var sse, sst, mean float64
			for _, t := range truth {
				mean += t
			}
			mean /= float64(len(truth))
			for j := range truth {
				d := preds[j] - truth[j]
				sse += d * d
				t := truth[j] - mean
				sst += t * t
			}
			if sst > 0 {
				r2 = 1 - sse/sst
			}
		}
		b.ReportMetric(r2, "r2")
	})
}

// Ablation: lock-free MPMC ring vs mutex ring under contention.
func BenchmarkAblationQueueKind(b *testing.B) {
	info := telemetry.NewFact("m", 1, 2)
	for _, kind := range []struct {
		name string
		q    queue.Queue
	}{{"mpmc", queue.NewMPMC(1024)}, {"mutex", queue.NewMutex(1024)}} {
		b.Run(kind.name, func(b *testing.B) {
			q := kind.q
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if q.TryPush(info) {
						q.TryPop()
					}
				}
			})
		})
	}
}

// Ablation: in-process broker vs TCP loopback transport.
func BenchmarkAblationTransport(b *testing.B) {
	payload := make([]byte, 16)
	b.Run("in-proc", func(b *testing.B) {
		br := stream.NewBroker(1 << 12)
		defer br.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := br.Publish(context.Background(), "t", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tcp", func(b *testing.B) {
		br := stream.NewBroker(1 << 12)
		defer br.Close()
		srv, err := stream.Serve(br, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		client, err := stream.Dial(srv.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer client.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.Publish(context.Background(), "t", payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: the only-if-changed publish filter (§3.2.1) on a mostly-static
// metric.
func BenchmarkAblationChangeFilter(b *testing.B) {
	for _, unchanged := range []bool{false, true} {
		name := "filter-on"
		if unchanged {
			name = "filter-off"
		}
		b.Run(name, func(b *testing.B) {
			bus := stream.NewBroker(1 << 12)
			defer bus.Close()
			v, err := score.NewFactVertex(score.FactConfig{
				Hook:             score.HookFunc{ID: "m", Fn: func() (float64, error) { return 42, nil }},
				Bus:              bus,
				Controller:       adaptive.NewFixed(time.Second),
				Clock:            sched.NewSimClock(time.Unix(0, 0)),
				PublishUnchanged: unchanged,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				v.PollOnce()
			}
			st := v.Stats()
			b.ReportMetric(float64(st.Published), "published")
			b.ReportMetric(float64(st.Suppressed), "suppressed")
		})
	}
}

// BenchmarkSubscribeDelivery measures fan-out delivery latency through the
// in-process Pub-Sub fabric.
func BenchmarkSubscribeDelivery(b *testing.B) {
	br := stream.NewBroker(1 << 14)
	defer br.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := br.Subscribe(ctx, "t", 0)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := br.Publish(context.Background(), "t", payload); err != nil {
			b.Fatal(err)
		}
		<-ch
	}
}
